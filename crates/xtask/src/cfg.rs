//! Per-function **basic-block control-flow graphs**, lowered from the
//! brace-matched fn bodies the item parser ([`crate::parser`]) recovers.
//!
//! The token- and item-level passes (PR 5/6) check *adjacency* — a comment
//! next to a site, a call somewhere in a body. The invariants the engine
//! actually relies on are *path* properties: a governor check on every trip
//! around a morsel loop, a span close on every exit, a telemetry publication
//! on every error path. This module recovers just enough control flow to ask
//! those questions, still with zero dependencies:
//!
//! * statements are token ranges, grouped into basic blocks;
//! * `if`/`else` chains, `match` arms, `loop`/`while`/`for` (with labels),
//!   `return`, `break`/`continue`, and the `?` operator all produce edges;
//!   every loop gets an explicit **latch** block carrying the back edge, so
//!   "on every re-iteration" is a question about paths into the latch;
//! * brace-bodied closures are lowered as **separate CFGs** (a `return`
//!   inside a closure exits the closure, not the enclosing fn), named
//!   `outer::{closure:LINE}` after their parent;
//! * `unsafe` blocks and loops are indexed on the side so passes can find
//!   them without re-scanning tokens.
//!
//! The lowering is deliberately **approximate and total** ("skip, don't
//! crash", like the parser): expression-position control flow (`let x = if
//! c { a } else { b };`, `match` in argument position) is kept inline as
//! straight-line code, which can only *merge* paths, never invent spurious
//! precision. Constructs the builder genuinely cannot place (an unresolved
//! `break 'label`, unbalanced delimiters) increment the per-fn `unmodeled`
//! counter instead of failing; the per-file counters surface in the `--json`
//! report and a whole-tree smoke test pins the clean-lowering rate ≥ 95%.

use std::ops::Range;

use crate::lexer::{Tok, TokKind};
use crate::parser::{walk_items, Item, ItemKind};

/// Why an edge exists, for debugging and for edge-sensitive passes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// Sequential fall-through (including joins after `if`/`match`).
    Seq,
    /// A conditional branch out of an `if`/`match`/loop header.
    Branch,
    /// The loop back edge, latch → head.
    Back,
    /// `break` to the loop's after-block.
    Break,
    /// `continue` to the loop's latch.
    Continue,
    /// `return` to the fn exit.
    Return,
    /// The error path of a `?` statement, to the fn exit.
    Question,
}

/// What role a statement plays, recorded at lowering time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StmtKind {
    /// An ordinary statement (or inline expression position).
    Plain,
    /// A `return` statement.
    Return,
    /// A `break` statement.
    Break,
    /// A `continue` statement.
    Continue,
    /// An `if`/`if let` condition header.
    CondHeader,
    /// A `match` scrutinee header.
    MatchHeader,
    /// A `while`/`while let`/`for` loop header.
    LoopHeader,
}

/// One statement: a token span inside one basic block.
#[derive(Debug, Clone)]
pub struct Stmt {
    /// Original token-stream indices (end exclusive, comments included).
    pub toks: Range<usize>,
    /// 0-based line of the first token.
    pub line: usize,
    /// Whether the statement contains a `?` (outside extracted closures).
    pub question: bool,
    /// Statement role.
    pub kind: StmtKind,
}

/// One basic block: straight-line statements plus out-edges.
#[derive(Debug, Default)]
pub struct Block {
    /// Statements in execution order.
    pub stmts: Vec<Stmt>,
    /// Successor block ids with the reason each edge exists.
    pub succs: Vec<(usize, EdgeKind)>,
}

/// One lowered loop, indexed for the checkpoint pass.
#[derive(Debug)]
pub struct LoopInfo {
    /// Header block (condition / iterator evaluation; re-entered each trip).
    pub head: usize,
    /// First block of the body.
    pub body_entry: usize,
    /// The latch: every re-iteration flows through it into the back edge.
    pub latch: usize,
    /// 0-based line of the loop keyword.
    pub line: usize,
    /// Original token range of the header expression (empty for `loop`).
    pub header: Range<usize>,
    /// Every block lowered inside the body (latch and body_entry included).
    pub blocks: Vec<usize>,
}

/// One `unsafe` block site, mapped to its containing basic block.
#[derive(Debug)]
pub struct UnsafeSite {
    /// Block the `unsafe` keyword executes in.
    pub block: usize,
    /// 0-based line of the `unsafe` keyword.
    pub line: usize,
}

/// The control-flow graph of one fn body (or one closure body).
#[derive(Debug)]
pub struct Cfg {
    /// Fn name, or `parent::{closure:LINE}` for closure bodies.
    pub name: String,
    /// 0-based line of the fn (or closure) introduction.
    pub line: usize,
    /// Whether the originating item carried `pub` visibility.
    pub is_pub: bool,
    /// Whether this CFG is a closure body.
    pub is_closure: bool,
    /// Blocks; `entry` and `exit` are always present.
    pub blocks: Vec<Block>,
    /// Entry block id (always 0).
    pub entry: usize,
    /// Exit block id (always 1); every `return`/`?` edge lands here.
    pub exit: usize,
    /// Loops lowered in this body, in source order.
    pub loops: Vec<LoopInfo>,
    /// `unsafe` block sites, in source order.
    pub unsafe_sites: Vec<UnsafeSite>,
    /// Constructs the builder could not place (0 = lowered cleanly).
    pub unmodeled: usize,
}

impl Cfg {
    /// Successor ids per block (edge kinds dropped), for the dataflow layer.
    pub fn succ_ids(&self) -> Vec<Vec<usize>> {
        self.blocks.iter().map(|b| b.succs.iter().map(|&(s, _)| s).collect()).collect()
    }

    /// Diagnostic anchor for a block: its first statement's line, else the
    /// fn line.
    pub fn block_line(&self, b: usize) -> usize {
        self.blocks[b].stmts.first().map_or(self.line, |s| s.line)
    }
}

/// Space-joined non-comment token text of a statement (the matching form
/// used by the dataflow passes: `governor . active ( )` etc.).
pub fn stmt_text(src: &str, toks: &[Tok], stmt: &Stmt) -> String {
    range_text(src, toks, &stmt.toks)
}

/// Space-joined non-comment token text of an arbitrary token range.
pub fn range_text(src: &str, toks: &[Tok], range: &Range<usize>) -> String {
    let mut out = String::new();
    for tok in &toks[range.start..range.end.min(toks.len())] {
        if matches!(tok.kind, TokKind::LineComment | TokKind::BlockComment) {
            continue;
        }
        if !out.is_empty() {
            out.push(' ');
        }
        out.push_str(tok.text(src));
    }
    out
}

/// Whether a statement's tokens contain `ident` as a standalone token.
pub fn stmt_mentions(src: &str, toks: &[Tok], stmt: &Stmt, ident: &str) -> bool {
    toks[stmt.toks.start..stmt.toks.end.min(toks.len())]
        .iter()
        .any(|t| t.kind == TokKind::Ident && t.text(src) == ident)
}

/// All CFGs of one file plus the fn-level lowering coverage counters.
#[derive(Debug, Default)]
pub struct FileCfgs {
    /// One CFG per fn body, with closure CFGs following their parent fn.
    pub cfgs: Vec<Cfg>,
    /// Named fns with bodies seen in the file.
    pub fn_total: usize,
    /// Fns (counting their closures) lowered without any unmodeled event.
    pub fn_clean: usize,
}

/// Lower every fn body in a parsed file. Never fails; see the module docs
/// for the approximation contract.
pub fn lower_file(src: &str, toks: &[Tok], items: &[Item]) -> FileCfgs {
    let mut out = FileCfgs::default();
    let mut fns: Vec<(&Item, Range<usize>)> = Vec::new();
    walk_items(items, &mut |item| {
        if item.kind == ItemKind::Fn {
            if let Some(body) = &item.body {
                fns.push((item, body.clone()));
            }
        }
    });
    for (item, body) in fns {
        let before = out.cfgs.len();
        lower_one(src, toks, &item.name, item.line, item.is_pub, false, body, &mut out.cfgs);
        let unmodeled: usize = out.cfgs[before..].iter().map(|c| c.unmodeled).sum();
        out.fn_total += 1;
        if unmodeled == 0 {
            out.fn_clean += 1;
        }
    }
    out
}

/// Lower one body (fn or closure) and append its CFG — plus the CFGs of any
/// brace-bodied closures found inside — to `out`.
#[allow(clippy::too_many_arguments)] // internal lowering plumbing
fn lower_one(
    src: &str,
    toks: &[Tok],
    name: &str,
    line: usize,
    is_pub: bool,
    is_closure: bool,
    body: Range<usize>,
    out: &mut Vec<Cfg>,
) {
    let code: Vec<usize> = (body.start..body.end.min(toks.len()))
        .filter(|&i| !matches!(toks[i].kind, TokKind::LineComment | TokKind::BlockComment))
        .collect();
    let mut b = Builder {
        src,
        toks,
        code,
        pos: 0,
        blocks: vec![Block::default(), Block::default()],
        cur: 0,
        loop_stack: Vec::new(),
        loops: Vec::new(),
        unsafe_sites: Vec::new(),
        unmodeled: 0,
        closures: Vec::new(),
    };
    let end = b.code.len();
    b.lower_stmts(end);
    b.edge(b.cur, 1, EdgeKind::Seq);
    let closures = std::mem::take(&mut b.closures);
    out.push(Cfg {
        name: name.to_string(),
        line,
        is_pub,
        is_closure,
        blocks: b.blocks,
        entry: 0,
        exit: 1,
        loops: b.loops,
        unsafe_sites: b.unsafe_sites,
        unmodeled: b.unmodeled,
    });
    for (range, closure_line) in closures {
        let cname = format!("{name}::{{closure:{}}}", closure_line + 1);
        lower_one(src, toks, &cname, closure_line, false, true, range, out);
    }
}

/// One entry of the loop stack: where `break`/`continue` land.
struct Frame {
    label: Option<String>,
    latch: usize,
    after: usize,
}

/// Stop conditions for the expression scanner.
#[derive(Clone, Copy)]
struct Stops {
    /// Stop (without consuming) at `;` at delimiter depth 0.
    semi: bool,
    /// Stop at `,` at depth 0 (match-arm expressions).
    comma: bool,
    /// Stop at `{` at depth 0 (if/while/for/match headers).
    brace: bool,
}

struct Builder<'a> {
    src: &'a str,
    toks: &'a [Tok],
    /// Original indices of the body's non-comment tokens.
    code: Vec<usize>,
    /// Cursor into `code`.
    pos: usize,
    blocks: Vec<Block>,
    cur: usize,
    loop_stack: Vec<Frame>,
    loops: Vec<LoopInfo>,
    unsafe_sites: Vec<UnsafeSite>,
    unmodeled: usize,
    /// Brace-bodied closures (original body token range, 0-based line),
    /// lowered into separate CFGs after the main body.
    closures: Vec<(Range<usize>, usize)>,
}

impl<'a> Builder<'a> {
    fn text(&self, ahead: usize) -> &'a str {
        self.code.get(self.pos + ahead).map_or("", |&i| self.toks[i].text(self.src))
    }

    fn kind(&self, ahead: usize) -> Option<TokKind> {
        self.code.get(self.pos + ahead).map(|&i| self.toks[i].kind)
    }

    fn line0(&self) -> usize {
        self.code.get(self.pos).map_or(0, |&i| self.toks[i].line)
    }

    /// Original index of the token at the cursor (or one past the body).
    fn orig(&self) -> usize {
        self.code.get(self.pos).copied().unwrap_or(self.toks.len())
    }

    /// Original index just past the most recently consumed token.
    fn orig_end(&self) -> usize {
        if self.pos == 0 {
            self.code.first().map_or(0, |&i| i)
        } else {
            self.code[self.pos - 1] + 1
        }
    }

    fn new_block(&mut self) -> usize {
        self.blocks.push(Block::default());
        self.blocks.len() - 1
    }

    fn edge(&mut self, from: usize, to: usize, kind: EdgeKind) {
        if !self.blocks[from].succs.contains(&(to, kind)) {
            self.blocks[from].succs.push((to, kind));
        }
    }

    fn push_stmt(&mut self, start_orig: usize, line: usize, question: bool, kind: StmtKind) {
        let end = self.orig_end();
        if end > start_orig {
            self.blocks[self.cur].stmts.push(Stmt { toks: start_orig..end, line, question, kind });
        }
    }

    /// With the cursor on `{`, return the code-index of the matching `}`
    /// (clamped to `end`; counts an unbalanced body as unmodeled).
    fn match_brace(&mut self, end: usize) -> usize {
        let mut depth = 0usize;
        let mut p = self.pos;
        while p < end {
            match self.toks[self.code[p]].text(self.src) {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return p;
                    }
                }
                _ => {}
            }
            p += 1;
        }
        self.unmodeled += 1;
        end
    }

    /// Skip `#[…]` attribute runs at statement position.
    fn skip_attrs(&mut self, end: usize) {
        while self.pos < end && self.text(0) == "#" && self.text(1) == "[" {
            self.pos += 1;
            let mut depth = 0usize;
            while self.pos < end {
                match self.text(0) {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            self.pos += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                self.pos += 1;
            }
        }
    }

    /// Lower statements until `end` (a code index just past the region).
    fn lower_stmts(&mut self, end: usize) {
        while self.pos < end {
            self.skip_attrs(end);
            if self.pos >= end {
                break;
            }
            let before = self.pos;
            match self.text(0) {
                "if" => self.lower_if(end),
                "match" => self.lower_match(end),
                "loop" | "while" | "for" => self.lower_loop(end, None),
                "return" => self.lower_return(end),
                "break" | "continue" => self.lower_break_continue(end),
                "unsafe" if self.text(1) == "{" => {
                    self.unsafe_sites.push(UnsafeSite { block: self.cur, line: self.line0() });
                    self.pos += 1;
                    self.inline_block(end);
                    self.eat_semi(end);
                }
                "{" => {
                    self.inline_block(end);
                    self.eat_semi(end);
                }
                "fn" | "struct" | "enum" | "impl" | "trait" | "mod" | "use" | "type"
                | "macro_rules" => self.skip_item(end),
                "unsafe" if self.text(1) == "fn" => self.skip_item(end),
                _ if self.kind(0) == Some(TokKind::Lifetime) && self.text(1) == ":" => {
                    self.lower_labeled(end)
                }
                _ => self.simple_stmt(end),
            }
            if self.pos == before {
                // Defensive: guarantee progress on any token soup.
                self.unmodeled += 1;
                self.pos += 1;
            }
        }
    }

    /// `'label:` followed by a loop or a block.
    fn lower_labeled(&mut self, end: usize) {
        let label = self.text(0).to_string();
        self.pos += 2;
        match self.text(0) {
            "loop" | "while" | "for" => self.lower_loop(end, Some(label)),
            "{" => {
                // Labeled block: `break 'label` exits it; `continue` to a
                // block label is not legal Rust, so latch == after.
                let after = self.new_block();
                self.loop_stack.push(Frame { label: Some(label), latch: after, after });
                self.inline_block(end);
                self.loop_stack.pop();
                let cur = self.cur;
                self.edge(cur, after, EdgeKind::Seq);
                self.cur = after;
                self.eat_semi(end);
            }
            _ => {
                self.unmodeled += 1;
                self.simple_stmt(end);
            }
        }
    }

    /// With the cursor on `{`, lower the contents into the current flow
    /// (no new block: inner statements may still branch).
    fn inline_block(&mut self, end: usize) {
        let close = self.match_brace(end);
        self.pos += 1;
        self.lower_stmts(close.min(end));
        self.pos = (close + 1).min(end);
    }

    fn eat_semi(&mut self, end: usize) {
        if self.pos < end && self.text(0) == ";" {
            self.pos += 1;
        }
    }

    /// Nested item in statement position: skip to `;` or a brace-matched
    /// body, like the parser's item-boundary recovery.
    fn skip_item(&mut self, end: usize) {
        let mut parens = 0i64;
        let mut brackets = 0i64;
        while self.pos < end {
            match self.text(0) {
                ";" if parens == 0 && brackets == 0 => {
                    self.pos += 1;
                    return;
                }
                "{" if parens == 0 && brackets == 0 => {
                    let close = self.match_brace(end);
                    self.pos = (close + 1).min(end);
                    return;
                }
                "(" => parens += 1,
                ")" => parens -= 1,
                "[" => brackets += 1,
                "]" => brackets -= 1,
                _ => {}
            }
            self.pos += 1;
        }
    }

    fn simple_stmt(&mut self, end: usize) {
        let start = self.orig();
        let line = self.line0();
        let q = self.advance_expr(end, Stops { semi: true, comma: false, brace: false });
        self.push_stmt(start, line, q, StmtKind::Plain);
        self.eat_semi(end);
        if q {
            let cur = self.cur;
            self.edge(cur, 1, EdgeKind::Question);
            let next = self.new_block();
            self.edge(cur, next, EdgeKind::Seq);
            self.cur = next;
        }
    }

    fn lower_return(&mut self, end: usize) {
        let start = self.orig();
        let line = self.line0();
        self.pos += 1;
        self.advance_expr(end, Stops { semi: true, comma: true, brace: false });
        self.eat_semi(end);
        self.push_stmt(start, line, false, StmtKind::Return);
        let cur = self.cur;
        self.edge(cur, 1, EdgeKind::Return);
        self.cur = self.new_block();
    }

    fn lower_break_continue(&mut self, end: usize) {
        let is_break = self.text(0) == "break";
        let start = self.orig();
        let line = self.line0();
        self.pos += 1;
        let label = if self.kind(0) == Some(TokKind::Lifetime) {
            let l = self.text(0).to_string();
            self.pos += 1;
            Some(l)
        } else {
            None
        };
        if is_break {
            // `break value` in a `loop` expression.
            self.advance_expr(end, Stops { semi: true, comma: true, brace: false });
        }
        self.eat_semi(end);
        let kind = if is_break { StmtKind::Break } else { StmtKind::Continue };
        self.push_stmt(start, line, false, kind);
        let frame = match &label {
            Some(l) => self.loop_stack.iter().rev().find(|f| f.label.as_deref() == Some(l)),
            None => self.loop_stack.last(),
        };
        let cur = self.cur;
        match frame {
            Some(f) => {
                let (target, ek) = if is_break {
                    (f.after, EdgeKind::Break)
                } else {
                    (f.latch, EdgeKind::Continue)
                };
                self.edge(cur, target, ek);
            }
            None => {
                // No enclosing loop we can see (or an unknown label): treat
                // as leaving the body rather than inventing a target.
                self.unmodeled += 1;
                self.edge(cur, 1, if is_break { EdgeKind::Break } else { EdgeKind::Continue });
            }
        }
        self.cur = self.new_block();
    }

    fn lower_if(&mut self, end: usize) {
        let start = self.orig();
        let line = self.line0();
        self.pos += 1;
        let q = self.advance_expr(end, Stops { semi: true, comma: false, brace: true });
        self.push_stmt(start, line, q, StmtKind::CondHeader);
        let cond = self.cur;
        if q {
            self.edge(cond, 1, EdgeKind::Question);
        }
        if self.text(0) != "{" {
            // A condition that never reached a body (malformed region).
            self.unmodeled += 1;
            return;
        }
        let then_b = self.new_block();
        self.edge(cond, then_b, EdgeKind::Branch);
        self.cur = then_b;
        self.inline_block(end);
        let mut ends = vec![self.cur];
        let mut has_else = false;
        if self.pos < end && self.text(0) == "else" {
            has_else = true;
            self.pos += 1;
            let else_b = self.new_block();
            self.edge(cond, else_b, EdgeKind::Branch);
            self.cur = else_b;
            if self.text(0) == "if" {
                self.lower_if(end);
            } else if self.text(0) == "{" {
                self.inline_block(end);
            } else {
                self.unmodeled += 1;
            }
            ends.push(self.cur);
        }
        let after = self.new_block();
        for e in ends {
            self.edge(e, after, EdgeKind::Seq);
        }
        if !has_else {
            self.edge(cond, after, EdgeKind::Branch);
        }
        self.cur = after;
        self.eat_semi(end);
    }

    fn lower_match(&mut self, end: usize) {
        let start = self.orig();
        let line = self.line0();
        self.pos += 1;
        let q = self.advance_expr(end, Stops { semi: true, comma: false, brace: true });
        self.push_stmt(start, line, q, StmtKind::MatchHeader);
        let header = self.cur;
        if q {
            self.edge(header, 1, EdgeKind::Question);
        }
        if self.text(0) != "{" {
            self.unmodeled += 1;
            return;
        }
        let close = self.match_brace(end);
        self.pos += 1;
        let mut ends = Vec::new();
        while self.pos < close {
            self.skip_attrs(close);
            if self.pos >= close {
                break;
            }
            if !self.skip_arm_pattern(close) {
                self.unmodeled += 1;
                self.pos = close;
                break;
            }
            let arm = self.new_block();
            self.edge(header, arm, EdgeKind::Branch);
            self.cur = arm;
            match self.text(0) {
                "{" => {
                    self.inline_block(close);
                    if self.pos < close && self.text(0) == "," {
                        self.pos += 1;
                    }
                }
                "return" => {
                    let s = self.orig();
                    let l = self.line0();
                    self.pos += 1;
                    self.advance_expr(close, Stops { semi: false, comma: true, brace: false });
                    self.push_stmt(s, l, false, StmtKind::Return);
                    let cur = self.cur;
                    self.edge(cur, 1, EdgeKind::Return);
                    self.cur = self.new_block();
                    if self.pos < close && self.text(0) == "," {
                        self.pos += 1;
                    }
                }
                "break" | "continue" => {
                    self.lower_break_continue(close);
                    if self.pos < close && self.text(0) == "," {
                        self.pos += 1;
                    }
                }
                _ => {
                    let s = self.orig();
                    let l = self.line0();
                    let aq =
                        self.advance_expr(close, Stops { semi: false, comma: true, brace: false });
                    self.push_stmt(s, l, aq, StmtKind::Plain);
                    if aq {
                        let cur = self.cur;
                        self.edge(cur, 1, EdgeKind::Question);
                    }
                    if self.pos < close && self.text(0) == "," {
                        self.pos += 1;
                    }
                }
            }
            ends.push(self.cur);
        }
        self.pos = (close + 1).min(end);
        let after = self.new_block();
        if ends.is_empty() {
            self.edge(header, after, EdgeKind::Seq);
        }
        for e in ends {
            self.edge(e, after, EdgeKind::Seq);
        }
        self.cur = after;
        self.eat_semi(end);
    }

    /// Consume one match-arm pattern (with optional guard) through its
    /// `=>`. Returns false if no `=>` exists before `close`.
    fn skip_arm_pattern(&mut self, close: usize) -> bool {
        let mut depth = 0i64;
        while self.pos < close {
            match self.text(0) {
                "=" if depth == 0 && self.text(1) == ">" => {
                    self.pos += 2;
                    return true;
                }
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                _ => {}
            }
            self.pos += 1;
        }
        false
    }

    fn lower_loop(&mut self, end: usize, label: Option<String>) {
        let line = self.line0();
        let is_bare_loop = self.text(0) == "loop";
        let prev = self.cur;
        let head = self.new_block();
        self.edge(prev, head, EdgeKind::Seq);
        self.cur = head;
        let header = if is_bare_loop {
            self.pos += 1;
            let at = self.orig();
            at..at
        } else {
            let start = self.orig();
            self.pos += 1; // while | for
            let q = self.advance_expr(end, Stops { semi: true, comma: false, brace: true });
            self.push_stmt(start, line, q, StmtKind::LoopHeader);
            if q {
                self.edge(head, 1, EdgeKind::Question);
            }
            start..self.orig_end()
        };
        if self.text(0) != "{" {
            self.unmodeled += 1;
            return;
        }
        let after = self.new_block();
        let body_mark = self.blocks.len();
        let latch = self.new_block();
        let body_entry = self.new_block();
        self.edge(head, body_entry, EdgeKind::Branch);
        if !is_bare_loop {
            self.edge(head, after, EdgeKind::Branch);
        }
        self.loop_stack.push(Frame { label, latch, after });
        self.cur = body_entry;
        self.inline_block(end);
        self.loop_stack.pop();
        let body_end = self.cur;
        self.edge(body_end, latch, EdgeKind::Seq);
        self.edge(latch, head, EdgeKind::Back);
        self.loops.push(LoopInfo {
            head,
            body_entry,
            latch,
            line,
            header,
            blocks: (body_mark..self.blocks.len()).collect(),
        });
        self.cur = after;
        self.eat_semi(end);
    }

    /// Whether a `|` at the cursor opens a closure rather than acting as
    /// binary or: binary `|` needs a value operand on its left.
    fn closure_starts_at(&self, prev: Option<usize>) -> bool {
        match prev {
            None => true,
            Some(i) => {
                let t = &self.toks[i];
                // Keyword idents (`move |x| …`, `return |x| …`) still open
                // closures; value-bearing tokens make `|` binary or.
                if t.kind == TokKind::Ident {
                    matches!(t.text(self.src), "move" | "return" | "else" | "in" | "static")
                } else {
                    // A `|` preceded by `|` is the second half of the `||`
                    // operator: a closure-opening `|` never survives as
                    // `prev` (skip_closure consumes through its mate).
                    !(matches!(
                        t.kind,
                        TokKind::Num | TokKind::Str | TokKind::RawStr | TokKind::Char
                    ) || matches!(t.text(self.src), ")" | "]" | "}" | "|"))
                }
            }
        }
    }

    /// With the cursor on the opening `|` of a closure: skip the parameter
    /// list and, for brace-bodied closures, queue the body for separate
    /// lowering and skip it. Expression-bodied closures are left in place
    /// (their tokens stay part of the enclosing statement).
    fn skip_closure(&mut self, end: usize) {
        self.pos += 1;
        if self.text(0) == "|" {
            self.pos += 1;
        } else {
            let mut depth = 0i64;
            while self.pos < end {
                match self.text(0) {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "|" if depth == 0 => {
                        self.pos += 1;
                        break;
                    }
                    _ => {}
                }
                self.pos += 1;
            }
        }
        if self.text(0) == "-" && self.text(1) == ">" {
            self.pos += 2;
            let mut depth = 0i64;
            while self.pos < end {
                match self.text(0) {
                    "(" | "[" | "<" => depth += 1,
                    ")" | "]" => {
                        if depth == 0 {
                            break;
                        }
                        depth -= 1;
                    }
                    ">" => depth -= 1,
                    "{" | "," | ";" if depth == 0 => break,
                    _ => {}
                }
                self.pos += 1;
            }
        }
        if self.text(0) == "{" {
            let line = self.line0();
            let close = self.match_brace(end);
            let inner = self.code.get(self.pos + 1).copied().unwrap_or(self.toks.len())
                ..self.code.get(close).copied().unwrap_or(self.toks.len());
            self.closures.push((inner, line));
            self.pos = (close + 1).min(end);
        }
    }

    /// Advance over expression tokens until a stop condition, tracking
    /// delimiter depth, extracting closures, and noting `?` and `unsafe`
    /// sites. Returns whether a `?` was seen.
    fn advance_expr(&mut self, end: usize, stops: Stops) -> bool {
        let mut question = false;
        let mut depth = 0i64;
        let mut prev: Option<usize> = None;
        while self.pos < end {
            let t = self.text(0);
            if depth == 0 {
                let stop = (stops.semi && t == ";")
                    || (stops.comma && t == ",")
                    || (stops.brace && t == "{")
                    || t == "}";
                if stop {
                    return question;
                }
            }
            match t {
                "(" | "[" => depth += 1,
                "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth < 0 {
                        self.unmodeled += 1;
                        return question;
                    }
                }
                "?" => question = true,
                "unsafe" if self.text(1) == "{" => {
                    self.unsafe_sites.push(UnsafeSite { block: self.cur, line: self.line0() });
                }
                "|" if self.closure_starts_at(prev) => {
                    self.skip_closure(end);
                    prev = self.pos.checked_sub(1).map(|p| self.code[p]);
                    continue;
                }
                _ => {}
            }
            prev = Some(self.code[self.pos]);
            self.pos += 1;
        }
        question
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse_items;

    fn lower(src: &str) -> FileCfgs {
        let toks = lex(src).unwrap();
        let items = parse_items(src, &toks);
        lower_file(src, &toks, &items)
    }

    fn cfg<'a>(f: &'a FileCfgs, name: &str) -> &'a Cfg {
        f.cfgs.iter().find(|c| c.name == name).unwrap_or_else(|| panic!("no cfg {name}"))
    }

    /// Blocks reachable from entry following succs.
    fn reachable(c: &Cfg) -> Vec<usize> {
        let mut seen = vec![false; c.blocks.len()];
        let mut stack = vec![c.entry];
        seen[c.entry] = true;
        while let Some(b) = stack.pop() {
            for &(s, _) in &c.blocks[b].succs {
                if !seen[s] {
                    seen[s] = true;
                    stack.push(s);
                }
            }
        }
        (0..c.blocks.len()).filter(|&b| seen[b]).collect()
    }

    fn has_edge(c: &Cfg, from: usize, to: usize, kind: EdgeKind) -> bool {
        c.blocks[from].succs.contains(&(to, kind))
    }

    #[test]
    fn straight_line_is_two_blocks_plus_exit() {
        let f = lower("fn f() { let a = 1; let b = a + 1; use_it(b); }");
        let c = cfg(&f, "f");
        assert_eq!(c.unmodeled, 0);
        assert_eq!(c.blocks[c.entry].stmts.len(), 3);
        assert!(has_edge(c, c.entry, c.exit, EdgeKind::Seq));
    }

    #[test]
    fn if_else_forms_a_diamond() {
        let f = lower("fn f(p: bool) { before(); if p { a(); } else { b(); } after(); }");
        let c = cfg(&f, "f");
        assert_eq!(c.unmodeled, 0);
        // entry(cond) branches to then and else; both join; join reaches exit.
        let branches: Vec<usize> = c.blocks[c.entry]
            .succs
            .iter()
            .filter(|(_, k)| *k == EdgeKind::Branch)
            .map(|&(s, _)| s)
            .collect();
        assert_eq!(branches.len(), 2, "{:?}", c.blocks[c.entry].succs);
        let joins: Vec<usize> =
            branches.iter().flat_map(|&b| c.blocks[b].succs.iter().map(|&(s, _)| s)).collect();
        assert_eq!(joins[0], joins[1], "both arms join the same block");
        assert!(reachable(c).contains(&c.exit));
    }

    #[test]
    fn if_without_else_falls_through() {
        let f = lower("fn f(p: bool) { if p { a(); } after(); }");
        let c = cfg(&f, "f");
        // The cond block has a Branch edge directly to the join.
        let cond = c.entry;
        let branch_targets: Vec<usize> = c.blocks[cond]
            .succs
            .iter()
            .filter(|(_, k)| *k == EdgeKind::Branch)
            .map(|&(s, _)| s)
            .collect();
        assert_eq!(branch_targets.len(), 2, "then-block and fall-through");
        assert_eq!(c.unmodeled, 0);
    }

    #[test]
    fn else_if_chains_nest() {
        let f = lower("fn f(x: u8) { if x == 0 { a(); } else if x == 1 { b(); } else { c(); } }");
        let c = cfg(&f, "f");
        assert_eq!(c.unmodeled, 0);
        let kinds: Vec<StmtKind> =
            c.blocks.iter().flat_map(|b| b.stmts.iter().map(|s| s.kind)).collect();
        assert_eq!(kinds.iter().filter(|k| **k == StmtKind::CondHeader).count(), 2);
    }

    #[test]
    fn match_arms_branch_and_join() {
        let f = lower(
            "fn f(x: u8) -> u8 { match x { 0 => zero(), 1 | 2 => { low(); } _ => other(), } done() }",
        );
        let c = cfg(&f, "f");
        assert_eq!(c.unmodeled, 0);
        let header = c.entry;
        let arms = c.blocks[header].succs.iter().filter(|(_, k)| *k == EdgeKind::Branch).count();
        assert_eq!(arms, 3, "{:?}", c.blocks[header].succs);
    }

    #[test]
    fn match_arm_return_exits() {
        let f = lower("fn f(x: u8) -> u8 { match x { 0 => return 9, _ => {} } tail() }");
        let c = cfg(&f, "f");
        assert_eq!(c.unmodeled, 0);
        let returns = c
            .blocks
            .iter()
            .flat_map(|b| b.succs.iter())
            .filter(|(t, k)| *t == c.exit && *k == EdgeKind::Return)
            .count();
        assert_eq!(returns, 1);
    }

    #[test]
    fn while_loop_has_head_latch_and_back_edge() {
        let f = lower("fn f(mut n: u8) { while n > 0 { n -= 1; } done(); }");
        let c = cfg(&f, "f");
        assert_eq!(c.unmodeled, 0);
        assert_eq!(c.loops.len(), 1);
        let lp = &c.loops[0];
        assert!(has_edge(c, lp.latch, lp.head, EdgeKind::Back));
        assert!(has_edge(c, lp.head, lp.body_entry, EdgeKind::Branch));
        assert!(lp.blocks.contains(&lp.latch));
        assert!(lp.blocks.contains(&lp.body_entry));
        // The while-header exits the loop too.
        assert!(c.blocks[lp.head]
            .succs
            .iter()
            .any(|&(s, k)| k == EdgeKind::Branch && s != lp.body_entry));
    }

    #[test]
    fn bare_loop_only_exits_through_break() {
        let f = lower("fn f() { loop { if done() { break; } step(); } after(); }");
        let c = cfg(&f, "f");
        assert_eq!(c.unmodeled, 0);
        let lp = &c.loops[0];
        // head has exactly one Branch successor (the body): no head→after.
        let head_branches =
            c.blocks[lp.head].succs.iter().filter(|(_, k)| *k == EdgeKind::Branch).count();
        assert_eq!(head_branches, 1);
        let breaks = c
            .blocks
            .iter()
            .flat_map(|b| b.succs.iter())
            .filter(|(_, k)| *k == EdgeKind::Break)
            .count();
        assert_eq!(breaks, 1);
        assert!(reachable(c).contains(&c.exit), "after() must still reach exit");
    }

    #[test]
    fn for_loop_header_is_recorded() {
        let f = lower("fn f(v: &[u8]) { for x in v.iter() { use_it(x); } }");
        let c = cfg(&f, "f");
        assert_eq!(c.unmodeled, 0);
        let lp = &c.loops[0];
        assert!(!lp.header.is_empty());
    }

    #[test]
    fn continue_targets_the_latch() {
        let f = lower("fn f(v: &[u8]) { for x in v { if skip(x) { continue; } work(x); } }");
        let c = cfg(&f, "f");
        assert_eq!(c.unmodeled, 0);
        let lp = &c.loops[0];
        let continues = c
            .blocks
            .iter()
            .flat_map(|b| b.succs.iter())
            .filter(|(t, k)| *t == lp.latch && *k == EdgeKind::Continue)
            .count();
        assert_eq!(continues, 1);
    }

    #[test]
    fn labeled_break_resolves_the_outer_loop() {
        let f = lower(
            "fn f() { 'outer: for a in xs() { for b in ys() { if p(a, b) { break 'outer; } } } }",
        );
        let c = cfg(&f, "f");
        assert_eq!(c.unmodeled, 0);
        assert_eq!(c.loops.len(), 2);
        // Inner loop is lowered inside the outer body; the labeled break
        // must target the *outer* after-block, which is no loop's block.
        let inner = &c.loops[0]; // pushed at inner pop first
        let break_edges: Vec<usize> = c
            .blocks
            .iter()
            .flat_map(|b| b.succs.iter())
            .filter(|(_, k)| *k == EdgeKind::Break)
            .map(|&(t, _)| t)
            .collect();
        assert_eq!(break_edges.len(), 1);
        assert!(!inner.blocks.contains(&break_edges[0]), "break 'outer leaves the inner loop");
    }

    #[test]
    fn question_mark_splits_the_block_with_an_exit_edge() {
        let f = lower("fn f() -> Result<(), E> { a(); fallible()?; b(); Ok(()) }");
        let c = cfg(&f, "f");
        assert_eq!(c.unmodeled, 0);
        let q_edges = c
            .blocks
            .iter()
            .flat_map(|b| b.succs.iter())
            .filter(|(t, k)| *t == c.exit && *k == EdgeKind::Question)
            .count();
        assert_eq!(q_edges, 1);
        // The `?` statement's block also flows on sequentially.
        let q_block =
            c.blocks.iter().position(|b| b.succs.contains(&(c.exit, EdgeKind::Question))).unwrap();
        assert!(c.blocks[q_block].succs.iter().any(|(_, k)| *k == EdgeKind::Seq));
    }

    #[test]
    fn return_statement_edges_to_exit() {
        let f = lower("fn f(p: bool) -> u8 { if p { return 1; } 0 }");
        let c = cfg(&f, "f");
        assert_eq!(c.unmodeled, 0);
        let returns = c
            .blocks
            .iter()
            .flat_map(|b| b.succs.iter())
            .filter(|(t, k)| *t == c.exit && *k == EdgeKind::Return)
            .count();
        assert_eq!(returns, 1);
    }

    #[test]
    fn brace_closures_become_separate_cfgs() {
        let f = lower(
            "fn outer(pool: &Pool) { pool.run(&|w| { if w > 0 { work(w); } return; }); tail(); }",
        );
        let outer = cfg(&f, "outer");
        assert_eq!(outer.unmodeled, 0);
        let closure = f.cfgs.iter().find(|c| c.is_closure).expect("closure CFG");
        assert!(closure.name.starts_with("outer::{closure:"), "{}", closure.name);
        // The closure's `return` stays local to the closure CFG.
        let outer_returns = outer
            .blocks
            .iter()
            .flat_map(|b| b.succs.iter())
            .filter(|(_, k)| *k == EdgeKind::Return)
            .count();
        assert_eq!(outer_returns, 0);
        let closure_returns = closure
            .blocks
            .iter()
            .flat_map(|b| b.succs.iter())
            .filter(|(_, k)| *k == EdgeKind::Return)
            .count();
        assert_eq!(closure_returns, 1);
    }

    #[test]
    fn expression_closures_stay_inline() {
        let f = lower("fn f(v: Vec<u8>) -> Vec<u8> { v.iter().map(|x| x + 1).collect() }");
        let c = cfg(&f, "f");
        assert_eq!(c.unmodeled, 0);
        assert_eq!(f.cfgs.len(), 1, "no closure CFG for |x| x + 1");
    }

    #[test]
    fn binary_or_is_not_a_closure() {
        let f = lower("fn f(a: u8, b: u8) -> u8 { let c = a | b; c | 4 }");
        let c = cfg(&f, "f");
        assert_eq!(c.unmodeled, 0);
        assert_eq!(f.cfgs.len(), 1);
        assert_eq!(c.blocks[c.entry].stmts.len(), 2);
    }

    #[test]
    fn logical_or_in_a_condition_is_not_a_closure() {
        // `a == 0 || b == 0`: the second `|` of `||` (prev token `|`) must
        // stay binary — misreading it as a closure opener swallows the rest
        // of the fn hunting for a mate.
        let f = lower(
            "fn f(v: &[u8]) -> u8 {\n    for x in v {\n        if *x == 0 || *x == 9 {\n            continue;\n        }\n        work(x)?;\n    }\n    0\n}",
        );
        let c = cfg(&f, "f");
        assert_eq!(c.unmodeled, 0);
        assert_eq!(c.loops.len(), 1);
        // The `?` inside the loop body must reach the exit.
        let q = c
            .blocks
            .iter()
            .flat_map(|b| &b.succs)
            .any(|&(to, kind)| to == c.exit && kind == EdgeKind::Question);
        assert!(q, "{:?}", c.blocks);
        // Empty closures still lower: `|| …` in expression-start position.
        let g = lower("fn g(p: &P) { p.run(|| step()); }");
        assert_eq!(cfg(&g, "g").unmodeled, 0);
    }

    #[test]
    fn unsafe_blocks_are_indexed_statement_and_expression_position() {
        let f = lower("fn f(p: *const u8) -> u8 { unsafe { touch(p); } let v = unsafe { *p }; v }");
        let c = cfg(&f, "f");
        assert_eq!(c.unsafe_sites.len(), 2, "{:?}", c.unsafe_sites);
    }

    #[test]
    fn unmodeled_counts_unknown_labels_without_crashing() {
        let f = lower("fn f() { loop { break 'nowhere; } }");
        let c = cfg(&f, "f");
        assert!(c.unmodeled > 0);
        assert_eq!(f.fn_total, 1);
        assert_eq!(f.fn_clean, 0);
    }

    #[test]
    fn inline_expression_if_is_merged_not_crashed() {
        let f = lower("fn f(p: bool) -> u8 { let x = if p { 1 } else { 2 }; x }");
        let c = cfg(&f, "f");
        assert_eq!(c.unmodeled, 0, "inline if is modeled as straight-line");
        assert_eq!(c.loops.len(), 0);
    }

    #[test]
    fn coverage_counts_clean_fns() {
        let f = lower("fn a() { x(); }\nfn b() { loop { continue 'gone; } }");
        assert_eq!(f.fn_total, 2);
        assert_eq!(f.fn_clean, 1);
    }

    #[test]
    fn stmt_text_and_mentions_use_token_form() {
        let src = "fn f(governor: &G) { if governor.active() { governor.check(); } }";
        let toks = lex(src).unwrap();
        let items = parse_items(src, &toks);
        let f = lower_file(src, &toks, &items);
        let c = &f.cfgs[0];
        let header = &c.blocks[c.entry].stmts[0];
        let text = stmt_text(src, &toks, header);
        assert!(text.contains("governor . active ("), "{text}");
        assert!(stmt_mentions(src, &toks, header, "governor"));
        assert!(!stmt_mentions(src, &toks, header, "check"));
    }

    #[test]
    fn while_let_claim_loop_matches_the_real_morsel_idiom() {
        let src = "fn run(sched: &S, governor: &G) {\n    let mut last = 0;\n    while let Some(claim) = sched.claim(1, 2, &mut last) {\n        if governor.active() { governor.check(); }\n        work(claim);\n    }\n}";
        let toks = lex(src).unwrap();
        let items = parse_items(src, &toks);
        let f = lower_file(src, &toks, &items);
        let c = &f.cfgs[0];
        assert_eq!(c.unmodeled, 0);
        assert_eq!(c.loops.len(), 1);
        let lp = &c.loops[0];
        let header_text = range_text(src, &toks, &lp.header);
        assert!(header_text.contains(". claim ("), "{header_text}");
        let body_first = &c.blocks[lp.body_entry].stmts[0];
        assert!(stmt_text(src, &toks, body_first).contains("governor . active ("));
    }

    #[test]
    fn question_in_header_adds_exit_edge() {
        let f = lower("fn f() -> Result<(), E> { if check()? { act(); } Ok(()) }");
        let c = cfg(&f, "f");
        assert_eq!(c.unmodeled, 0);
        assert!(has_edge(c, c.entry, c.exit, EdgeKind::Question));
    }

    #[test]
    fn nested_closures_lower_recursively() {
        let f = lower("fn f(p: &Pool) { p.run(&|w| { inner(move |x| { use_both(w, x); }); }); }");
        assert_eq!(
            f.cfgs.iter().filter(|c| c.is_closure).count(),
            2,
            "{:?}",
            f.cfgs.iter().map(|c| c.name.clone()).collect::<Vec<_>>()
        );
    }
}
