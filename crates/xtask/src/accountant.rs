//! Pass 6: memory-accountant coverage.
//!
//! The resource governor (DESIGN.md §10) can only enforce `mem_budget` for
//! allocations that are charged against it. The scan and aggregation
//! modules are where the data-dependent allocations live — accumulator
//! arrays, group tables, selection scratch, unpack buffers — so those files
//! must reference the accountant API (`MemScope`, `projected_bytes`, or a
//! `.charge(` call site) as long as they allocate at all. A file that grows
//! a new allocation idiom while dropping every accountant reference has
//! detached its allocations from the budget, and this pass flags each
//! allocation line in it.
//!
//! The check is deliberately file-granular, not per-allocation: the
//! accountant charges *estimates* covering several allocations at once
//! (e.g. one `projected_bytes` charge covers all of an executor's arrays),
//! so requiring a `.charge(` adjacent to every `vec![` would force
//! redundant bookkeeping. What the pass guarantees is that the accounting
//! machinery cannot silently rot out of the allocating modules.

use crate::scan::SourceFile;
use crate::Diag;

/// Files whose allocations must be covered by the memory accountant.
const ACCOUNTED_FILES: [&str; 2] = ["crates/core/src/scan.rs", "crates/core/src/aggproc.rs"];

/// Allocation idioms that create data-dependent buffers.
const ALLOC_TOKENS: [&str; 4] = ["vec![", "with_capacity(", ".resize(", ".resize_with("];

/// Accountant API references; at least one must appear in an allocating
/// accounted file.
const ACCOUNTANT_TOKENS: [&str; 3] = ["MemScope", "projected_bytes", ".charge("];

/// Run the accountant-coverage pass.
pub fn check(files: &[SourceFile]) -> Vec<Diag> {
    let mut out = Vec::new();
    for file in files {
        if !ACCOUNTED_FILES.contains(&file.rel.as_str()) {
            continue;
        }
        let text = file.code_text();
        if ACCOUNTANT_TOKENS.iter().any(|t| text.contains(t)) {
            continue;
        }
        // Unit-test modules sit below the first `#[cfg(test)]` marker
        // (enforced by convention across the audited corpus); their scratch
        // allocations are not query memory.
        let first_test_line =
            file.code.iter().position(|l| l.contains("#[cfg(test)]")).unwrap_or(usize::MAX);
        for (i, line) in file.code.iter().enumerate() {
            if i >= first_test_line {
                break;
            }
            for token in ALLOC_TOKENS {
                if line.contains(token) {
                    out.push(Diag {
                        path: file.rel.clone(),
                        line: i + 1,
                        pass: "accountant",
                        msg: format!(
                            "`{token}` allocation in an accounted module that no longer \
                             references the memory accountant — charge it via \
                             `governor::MemScope` so `mem_budget` stays enforceable"
                        ),
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scrub;

    fn file(rel: &str, src: &str) -> SourceFile {
        SourceFile {
            rel: rel.into(),
            raw: src.lines().map(str::to_owned).collect(),
            code: scrub(src).lines().map(str::to_owned).collect(),
        }
    }

    #[test]
    fn unaccounted_allocation_is_flagged() {
        let f = file("crates/core/src/scan.rs", "fn f() { let v = vec![0u32; 4096]; }");
        let diags = check(&[f]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].msg.contains("MemScope"), "{diags:?}");
    }

    #[test]
    fn accountant_reference_clears_the_file() {
        let f = file(
            "crates/core/src/aggproc.rs",
            "use crate::governor::MemScope;\nfn f() { let v = vec![0u32; 4096]; }",
        );
        assert!(check(&[f]).is_empty());
    }

    #[test]
    fn charge_call_counts_as_coverage() {
        let f = file(
            "crates/core/src/scan.rs",
            "fn f(m: &mut M) { m.charge(g, 42).unwrap(); let v = Vec::with_capacity(9); }",
        );
        assert!(check(&[f]).is_empty());
    }

    #[test]
    fn other_files_are_not_accounted() {
        let f = file("crates/core/src/trace.rs", "fn f() { let v = vec![0u8; 1 << 20]; }");
        assert!(check(&[f]).is_empty());
    }

    #[test]
    fn test_module_allocations_are_exempt() {
        let f = file(
            "crates/core/src/scan.rs",
            "pub fn real() {}\n#[cfg(test)]\nmod tests { fn t() { let v = vec![0; 8]; } }",
        );
        assert!(check(&[f]).is_empty());
    }

    #[test]
    fn prose_mentions_do_not_count_as_coverage() {
        // A comment saying "MemScope" must not satisfy the pass — the
        // scrubbed view drops it, so the allocation is still flagged.
        let f = file(
            "crates/core/src/scan.rs",
            "// TODO: route through MemScope\nfn f() { let v = vec![0u32; 4096]; }",
        );
        assert_eq!(check(&[f]).len(), 1);
    }
}
