//! Pass 6: memory-accountant coverage.
//!
//! The resource governor (DESIGN.md §10) can only enforce `mem_budget` for
//! allocations that are charged against it. The scan and aggregation
//! modules are where the data-dependent allocations live — accumulator
//! arrays, group tables, selection scratch, unpack buffers — so those files
//! must reference the accountant API (`MemScope`, `projected_bytes`, or a
//! `.charge(` call site) as long as they allocate at all. A file that grows
//! a new allocation idiom while dropping every accountant reference has
//! detached its allocations from the budget, and this pass flags each
//! allocation line in it.
//!
//! The check is deliberately file-granular, not per-allocation: the
//! accountant charges *estimates* covering several allocations at once
//! (e.g. one `projected_bytes` charge covers all of an executor's arrays),
//! so requiring a `.charge(` adjacent to every `vec![` would force
//! redundant bookkeeping. What the pass guarantees is that the accounting
//! machinery cannot silently rot out of the allocating modules.
//!
//! Both the allocation idioms (`vec![`, `with_capacity(`, `.resize(`) and
//! the accountant references are matched as token sequences, so a comment
//! saying "route through MemScope" does not count as coverage.

use crate::scan::SourceFile;
use crate::Diag;

/// Files whose allocations must be covered by the memory accountant.
const ACCOUNTED_FILES: [&str; 2] = ["crates/core/src/scan.rs", "crates/core/src/aggproc.rs"];

/// Allocation idioms as token sequences.
const ALLOC_SEQS: [(&[&str], &str); 4] = [
    (&["vec", "!", "["], "vec!["),
    (&["with_capacity", "("], "with_capacity("),
    (&[".", "resize", "("], ".resize("),
    (&[".", "resize_with", "("], ".resize_with("),
];

/// Accountant API references; at least one must appear in an allocating
/// accounted file.
const ACCOUNTANT_SEQS: [&[&str]; 3] = [&["MemScope"], &["projected_bytes"], &[".", "charge", "("]];

/// Run the accountant-coverage pass.
pub fn check(files: &[SourceFile]) -> Vec<Diag> {
    let mut out = Vec::new();
    for file in files {
        if !ACCOUNTED_FILES.contains(&file.rel.as_str()) {
            continue;
        }
        if file.toks.is_empty() {
            check_fallback(file, &mut out);
            continue;
        }
        let covered = ACCOUNTANT_SEQS
            .iter()
            .any(|seq| !crate::lexer::find_seq(&file.text, &file.toks, seq).is_empty());
        if covered {
            continue;
        }
        for (seq, label) in ALLOC_SEQS {
            for tok in crate::lexer::find_seq(&file.text, &file.toks, seq) {
                if !file.line_in_tests(tok.line) {
                    out.push(diag(file, tok.line, label));
                }
            }
        }
    }
    out.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    out
}

/// Legacy substring scan for files the lexer could not finish.
fn check_fallback(file: &SourceFile, out: &mut Vec<Diag>) {
    let text = file.code_text();
    if ["MemScope", "projected_bytes", ".charge("].iter().any(|t| text.contains(t)) {
        return;
    }
    for (i, line) in file.code.iter().enumerate() {
        if file.line_in_tests(i) {
            continue;
        }
        for token in ["vec![", "with_capacity(", ".resize(", ".resize_with("] {
            if line.contains(token) {
                out.push(diag(file, i, token));
            }
        }
    }
}

fn diag(file: &SourceFile, line: usize, token: &str) -> Diag {
    Diag {
        path: file.rel.clone(),
        line: line + 1,
        pass: "accountant",
        msg: format!(
            "`{token}` allocation in an accounted module that no longer \
             references the memory accountant — charge it via \
             `governor::MemScope` so `mem_budget` stays enforceable"
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(rel: &str, src: &str) -> SourceFile {
        SourceFile::from_source(rel, src)
    }

    #[test]
    fn unaccounted_allocation_is_flagged() {
        let f = file("crates/core/src/scan.rs", "fn f() { let v = vec![0u32; 4096]; }");
        let diags = check(&[f]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].msg.contains("MemScope"), "{diags:?}");
    }

    #[test]
    fn accountant_reference_clears_the_file() {
        let f = file(
            "crates/core/src/aggproc.rs",
            "use crate::governor::MemScope;\nfn f() { let v = vec![0u32; 4096]; }",
        );
        assert!(check(&[f]).is_empty());
    }

    #[test]
    fn charge_call_counts_as_coverage() {
        let f = file(
            "crates/core/src/scan.rs",
            "fn f(m: &mut M) { m.charge(g, 42)?; let v = Vec::with_capacity(9); }",
        );
        assert!(check(&[f]).is_empty());
    }

    #[test]
    fn other_files_are_not_accounted() {
        let f = file("crates/core/src/trace.rs", "fn f() { let v = vec![0u8; 1 << 20]; }");
        assert!(check(&[f]).is_empty());
    }

    #[test]
    fn test_module_allocations_are_exempt() {
        let f = file(
            "crates/core/src/scan.rs",
            "pub fn real() {}\n#[cfg(test)]\nmod tests { fn t() { let v = vec![0; 8]; } }",
        );
        assert!(check(&[f]).is_empty());
    }

    #[test]
    fn prose_mentions_do_not_count_as_coverage() {
        // A comment saying "MemScope" must not satisfy the pass — comments
        // are separate tokens, so the allocation is still flagged.
        let f = file(
            "crates/core/src/scan.rs",
            "// TODO: route through MemScope\nfn f() { let v = vec![0u32; 4096]; }",
        );
        assert_eq!(check(&[f]).len(), 1);
    }
}
