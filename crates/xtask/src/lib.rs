//! `cargo xtask audit` — repo-local static analysis for the BIPie workspace.
//!
//! Seventeen passes, all built on the hand-rolled token lexer in [`lexer`]
//! and — for the semantic passes — the recursive-descent item parser in
//! [`parser`], the symbol/module graph in [`graph`], and the per-fn
//! control-flow graphs in [`cfg`] with the worklist dataflow framework in
//! [`dataflow`] (zero dependencies, no `syn`). Each source file is read,
//! lexed, parsed and CFG-lowered exactly once per run ([`Corpus`]); passes
//! share the corpus and report per-pass wall time (plus CFG lowering
//! coverage) in the `--json` report.
//!
//! 1. [`unsafe_audit`] — every `unsafe` block must sit under a `// SAFETY:`
//!    comment and every `unsafe fn` must carry a `# Safety` contract.
//! 2. [`kernel_contract`] — every `#[target_feature]` kernel in
//!    `crates/toolbox` must have a scalar sibling in the same module, a
//!    differential test against `SimdLevel::available()`, and every declared
//!    SIMD tier must actually be wired into its dispatcher.
//! 3. [`invariants`] — dispatchers consuming selection or group-id vectors
//!    must call the `debug_assert_*` instrumentation helpers, and every
//!    helper that exists must be wired somewhere.
//! 4. [`thread_hygiene`] — thread-spawning primitives (`thread::spawn`,
//!    `thread::scope`, `thread::Builder`) are only permitted inside the
//!    worker pool module and in test code; production code must parallelize
//!    through the pool.
//! 5. [`trace_hygiene`] — raw cycle-counter reads (`read_tsc`,
//!    `read_cycles`, `_rdtsc`) and `TraceEvent` construction are confined
//!    to `core::trace`, the metrics crates, and tests; engine code records
//!    through `Tracer`, where the `ProfileLevel::Off` gate lives.
//! 6. [`accountant`] — the allocating scan/aggregation modules must keep
//!    referencing the resource governor's memory accountant
//!    (`governor::MemScope`), so new allocation sites cannot silently
//!    detach from `mem_budget` enforcement.
//! 7. [`atomics`] — every atomic `Ordering::*` use carries an adjacent
//!    `// ORDERING:` justification, and atomics stay confined to the
//!    modules that own concurrent state (pool/governor/batch).
//! 8. [`panics`] — library crates are panic-free: no `.unwrap()` /
//!    `.expect(…)` / `panic!` / `unreachable!` / `todo!` /
//!    `unimplemented!` outside tests and `debug_assert*`, unless pinned
//!    with a `// PANIC:` justification.
//! 9. [`dispatch_matrix`] — the (op × width × tier) dispatch table is
//!    statically extracted and every cell cross-checked against the scalar
//!    oracle registry and the `SimdLevel::available()` equivalence-test
//!    matrix, including numeric width gates.
//! 10. [`lock_discipline`] — blocking synchronization (`Mutex`/`RwLock`/
//!     `Condvar`) is confined to `core::pool`/`core::scan`; every lock field
//!     and guard-acquisition site carries `// LOCK:`; per-fn guard-liveness
//!     analysis builds the lock-order graph and flags cycles, guards held
//!     across `Condvar::wait`, and guards held across pool-reentrant calls.
//! 11. [`sync_escape`] — structs owning atomics/`UnsafeCell`/locks stay in
//!     the modules that own concurrent state (or document their sharing
//!     protocol); sync fields are never `pub`; `unsafe impl Send`/`Sync` is
//!     always flagged.
//! 12. [`error_surface`] — every `EngineError` variant has a library
//!     construction site and a test mention, and engine `Result`s are never
//!     discarded via `let _ =` or `.ok()` in library code.
//! 13. [`layer_conformance`] — the `use` graph conforms to the crate DAG
//!     (toolbox → columnstore/metrics → core → tpch/bench) and to the
//!     core-module layer table, and every crate's module graph is acyclic.
//! 14. [`checkpoint_reachability`] — every loop claiming morsels or
//!     iterating batches in the scan/pool/engine layer reaches a `Governor`
//!     checkpoint on every path through its body (dataflow over the per-fn
//!     CFGs from [`cfg`], solved by the worklist framework in [`dataflow`]).
//! 15. [`span_balance`] — every profiler phase-span open
//!     (`let t = tracer.start()`) is consumed on all paths, including early
//!     `?`/`return` exits and conditionally-closed branches.
//! 16. [`telemetry_accounting`] — every path producing an `EngineError` out
//!     of the engine's `execute*`/`admit*` boundary reaches the telemetry
//!     publication seam, and decision-log increments stay paired with their
//!     `ExecStats` increment sites.
//! 17. [`safety_flow`] — each `// SAFETY:` contract naming a checkable
//!     precondition (a workspace fn like `has_avx2()`) is dominated by a
//!     validation of it.
//!
//! Violations print as `path:line: [pass] message` (or as SARIF with
//! `--json`) and make the binary exit `1`; `2` is reserved for internal
//! errors, so CI can tell "findings" from "the auditor broke". Findings
//! carry line-drift-stable IDs ([`report::stable_ids`]) and can be
//! suppressed either by `path:line` in `crates/xtask/audit-allowlist.txt`
//! or by ID in `crates/xtask/audit-baseline.json`; stale entries in either
//! file are themselves errors, so both can only shrink.

#![forbid(unsafe_code)]

pub mod accountant;
pub mod atomics;
pub mod bench_check;
pub mod cfg;
pub mod checkpoint_reachability;
pub mod dataflow;
pub mod dispatch_matrix;
pub mod error_surface;
pub mod explain;
pub mod graph;
pub mod invariants;
pub mod kernel_contract;
pub mod layer_conformance;
pub mod lexer;
pub mod lock_discipline;
pub mod panics;
pub mod parser;
pub mod report;
pub mod safety_flow;
pub mod scan;
pub mod span_balance;
pub mod sync_escape;
pub mod telemetry_accounting;
pub mod thread_hygiene;
pub mod trace_hygiene;
pub mod unsafe_audit;

use std::fmt;
use std::path::Path;
use std::time::Instant;

/// One audit violation, printed as `path:line: [pass] message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diag {
    /// Path relative to the audited root, `/`-separated.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Which pass produced this (`unsafe-audit`, `kernel-contract`,
    /// `invariants`, `thread-hygiene`, `trace-hygiene`, `accountant`,
    /// `atomics-discipline`, `panic-freedom`, `dispatch-matrix`,
    /// `lock-discipline`, `sync-escape`, `error-surface`,
    /// `layer-conformance`, `checkpoint-reachability`, `span-balance`,
    /// `telemetry-accounting`, `safety-precondition-flow`, `allowlist`,
    /// `baseline`).
    pub pass: &'static str,
    /// Human-readable description of the violation.
    pub msg: String,
}

impl fmt::Display for Diag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.path, self.line, self.pass, self.msg)
    }
}

/// Every pass name accepted by [`run_audit`], in execution order.
pub const ALL_PASSES: [&str; 17] = [
    "unsafe",
    "kernels",
    "invariants",
    "threads",
    "trace",
    "accountant",
    "atomics",
    "panics",
    "dispatch",
    "locks",
    "sync",
    "errors",
    "layers",
    "checkpoints",
    "spans",
    "telemetry",
    "safety",
];

/// The audited corpus: every workspace source file read, lexed and parsed
/// once, plus the symbol/module graph derived from the parsed items. All
/// passes share this — no pass re-reads or re-lexes anything.
pub struct Corpus {
    /// Workspace sources, sorted by relative path.
    pub files: Vec<scan::SourceFile>,
    /// `use` edges and fn call sites extracted from [`Corpus::files`].
    pub graph: graph::Graph,
}

impl Corpus {
    /// Load and parse the workspace under `root`.
    pub fn load(root: &Path) -> Corpus {
        let files: Vec<scan::SourceFile> = scan::workspace_files(root)
            .iter()
            .filter_map(|p| scan::SourceFile::load(root, p))
            .collect();
        let graph = graph::Graph::build(&files);
        Corpus { files, graph }
    }
}

/// Wall time spent in one pass, for the `--json` report.
pub struct PassTiming {
    /// CLI pass name.
    pub pass: &'static str,
    /// Elapsed wall time in microseconds.
    pub micros: u128,
}

/// CFG lowering coverage for one audit run: how many fns (counting
/// closures) lowered without any unmodeled construct, totalled and broken
/// out per file that has fallbacks. Reported in the `--json` property bag
/// so coverage regressions are visible in CI before they erode the
/// dataflow passes.
#[derive(Default)]
pub struct CfgCoverage {
    /// Fns (plus closures) seen across the corpus.
    pub fn_total: usize,
    /// Fns lowered without any unmodeled event.
    pub fn_clean: usize,
    /// `(path, fn_total, fn_clean)` for every file with at least one
    /// fallback, sorted by path.
    pub fallback_files: Vec<(String, usize, usize)>,
}

/// Diagnostics plus per-pass timings from one audit run.
pub struct AuditOutcome {
    /// Post-allowlist/baseline diagnostics, sorted by path/line/pass.
    pub diags: Vec<Diag>,
    /// One entry per executed pass, in execution order.
    pub timings: Vec<PassTiming>,
    /// CFG lowering coverage over the audited corpus.
    pub coverage: CfgCoverage,
}

/// The pass dispatch table: CLI name → runner over the shared [`Corpus`].
type PassFn = fn(&Corpus) -> Vec<Diag>;
const PASS_TABLE: [(&str, PassFn); 17] = [
    ("unsafe", |c| unsafe_audit::check(&c.files)),
    ("kernels", |c| kernel_contract::check(&c.files)),
    ("invariants", |c| invariants::check(&c.files)),
    ("threads", |c| thread_hygiene::check(&c.files)),
    ("trace", |c| trace_hygiene::check(&c.files)),
    ("accountant", |c| accountant::check(&c.files)),
    ("atomics", |c| atomics::check(&c.files)),
    ("panics", |c| panics::check(&c.files)),
    ("dispatch", |c| dispatch_matrix::check(&c.files)),
    ("locks", |c| lock_discipline::check(&c.files, &c.graph)),
    ("sync", |c| sync_escape::check(&c.files)),
    ("errors", |c| error_surface::check(&c.files)),
    ("layers", |c| layer_conformance::check(&c.files, &c.graph)),
    ("checkpoints", |c| checkpoint_reachability::check(&c.files)),
    ("spans", |c| span_balance::check(&c.files)),
    ("telemetry", |c| telemetry_accounting::check(&c.files, &c.graph)),
    ("safety", |c| safety_flow::check(&c.files)),
];

/// Load the audited corpus once and run the requested passes.
///
/// `passes` is a subset of [`ALL_PASSES`]; the allowlist and baseline are
/// always applied. Diagnostics come back sorted by path/line, so the
/// report — text or SARIF — is deterministic across runs and filesystems
/// (the walk itself is sorted too).
pub fn run_audit(root: &Path, passes: &[&str]) -> Vec<Diag> {
    run_audit_timed(root, passes).diags
}

/// [`run_audit`], also reporting per-pass wall time and CFG coverage.
pub fn run_audit_timed(root: &Path, passes: &[&str]) -> AuditOutcome {
    let corpus = Corpus::load(root);
    let mut diags = Vec::new();
    let mut timings = Vec::new();
    for (name, runner) in PASS_TABLE {
        if passes.contains(&name) {
            let start = Instant::now();
            diags.extend(runner(&corpus));
            timings.push(PassTiming { pass: name, micros: start.elapsed().as_micros() });
        }
    }
    let mut coverage = CfgCoverage::default();
    for f in &corpus.files {
        coverage.fn_total += f.cfgs.fn_total;
        coverage.fn_clean += f.cfgs.fn_clean;
        if f.cfgs.fn_clean < f.cfgs.fn_total {
            coverage.fallback_files.push((f.rel.clone(), f.cfgs.fn_total, f.cfgs.fn_clean));
        }
    }
    diags = apply_allowlist(root, diags);
    diags = report::apply_baseline(root, diags);
    diags.sort_by(|a, b| (&a.path, a.line, a.pass).cmp(&(&b.path, b.line, b.pass)));
    AuditOutcome { diags, timings, coverage }
}

/// Workspace-relative paths touched by the working tree (staged, unstaged,
/// and untracked), for `cargo xtask audit --changed`. Errors (not a git
/// checkout, git missing) come back as a message — the CLI maps them to
/// exit code 2, keeping "the auditor broke" distinct from findings.
pub fn changed_files(root: &Path) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    for args in
        [&["diff", "--name-only", "HEAD"][..], &["ls-files", "--others", "--exclude-standard"][..]]
    {
        let run = std::process::Command::new("git")
            .arg("-C")
            .arg(root)
            .args(args)
            .output()
            .map_err(|e| format!("cannot run git: {e}"))?;
        if !run.status.success() {
            return Err(format!(
                "git {} failed: {}",
                args.join(" "),
                String::from_utf8_lossy(&run.stderr).trim()
            ));
        }
        out.extend(
            String::from_utf8_lossy(&run.stdout)
                .lines()
                .map(str::trim)
                .filter(|l| !l.is_empty())
                .map(str::to_string),
        );
    }
    out.sort();
    out.dedup();
    Ok(out)
}

/// The module parents of a workspace-relative source path: every ancestor
/// `mod.rs` under `src/`, plus the crate roots `src/lib.rs`/`src/main.rs`.
/// A change to `crates/core/src/scan/hot.rs` puts `crates/core/src/scan/
/// mod.rs` and `crates/core/src/lib.rs` in scope too, because passes report
/// module- and crate-level findings (layering, error surface) against those
/// files.
pub fn module_parents(rel: &str) -> Vec<String> {
    let Some((mut dir, _)) = rel.rsplit_once('/') else { return Vec::new() };
    let mut out = Vec::new();
    loop {
        match dir.rsplit_once('/') {
            Some((parent, leaf)) if leaf != "src" => {
                out.push(format!("{dir}/mod.rs"));
                dir = parent;
            }
            Some(_) => {
                out.push(format!("{dir}/lib.rs"));
                out.push(format!("{dir}/main.rs"));
                break;
            }
            // The workspace root package keeps its sources in a top-level
            // `src/`; its crate roots are parents too.
            None if dir == "src" => {
                out.push("src/lib.rs".to_string());
                out.push("src/main.rs".to_string());
                break;
            }
            // Never reached a `src/` ancestor: not a module file (docs,
            // fixtures, config) — no parents.
            None => return Vec::new(),
        }
    }
    out.retain(|p| p != rel);
    out
}

/// Restrict `diags` to findings in `changed` files or their module parents.
/// Allowlist/baseline bookkeeping findings are dropped too: scoping removes
/// the diagnostics their entries match, so "stale entry" would be a false
/// alarm here — only the full run enforces that the two files shrink.
pub fn scope_to_changed(diags: Vec<Diag>, changed: &[String]) -> Vec<Diag> {
    let mut scope: std::collections::BTreeSet<String> = changed.iter().cloned().collect();
    for rel in changed {
        scope.extend(module_parents(rel));
    }
    diags
        .into_iter()
        .filter(|d| d.pass != "allowlist" && d.pass != "baseline" && scope.contains(&d.path))
        .collect()
}

/// Subtract allowlisted `path:line` entries from `diags`; entries that match
/// nothing are reported as errors themselves, so the allowlist monotonically
/// shrinks toward (and then stays) empty.
fn apply_allowlist(root: &Path, mut diags: Vec<Diag>) -> Vec<Diag> {
    let list = root.join("crates/xtask/audit-allowlist.txt");
    let Ok(text) = std::fs::read_to_string(&list) else {
        return diags;
    };
    for (lineno, raw) in text.lines().enumerate() {
        let entry = raw.trim();
        if entry.is_empty() || entry.starts_with('#') {
            continue;
        }
        let Some((path, line)) = entry
            .rsplit_once(':')
            .and_then(|(p, l)| l.parse::<usize>().ok().map(|n| (p.to_string(), n)))
        else {
            diags.push(Diag {
                path: "crates/xtask/audit-allowlist.txt".into(),
                line: lineno + 1,
                pass: "allowlist",
                msg: format!("malformed entry {entry:?} (expected path:line)"),
            });
            continue;
        };
        let before = diags.len();
        diags.retain(|d| !(d.path == path && d.line == line));
        if diags.len() == before {
            diags.push(Diag {
                path: "crates/xtask/audit-allowlist.txt".into(),
                line: lineno + 1,
                pass: "allowlist",
                msg: format!("stale entry {entry:?} matches no diagnostic — remove it"),
            });
        }
    }
    diags
}
