//! `cargo xtask audit` — repo-local static analysis for the BIPie workspace.
//!
//! Nine passes, all built on the hand-rolled token lexer in [`lexer`]
//! (zero dependencies, no `syn`):
//!
//! 1. [`unsafe_audit`] — every `unsafe` block must sit under a `// SAFETY:`
//!    comment and every `unsafe fn` must carry a `# Safety` contract.
//! 2. [`kernel_contract`] — every `#[target_feature]` kernel in
//!    `crates/toolbox` must have a scalar sibling in the same module, a
//!    differential test against `SimdLevel::available()`, and every declared
//!    SIMD tier must actually be wired into its dispatcher.
//! 3. [`invariants`] — dispatchers consuming selection or group-id vectors
//!    must call the `debug_assert_*` instrumentation helpers, and every
//!    helper that exists must be wired somewhere.
//! 4. [`thread_hygiene`] — thread-spawning primitives (`thread::spawn`,
//!    `thread::scope`, `thread::Builder`) are only permitted inside the
//!    worker pool module and in test code; production code must parallelize
//!    through the pool.
//! 5. [`trace_hygiene`] — raw cycle-counter reads (`read_tsc`,
//!    `read_cycles`, `_rdtsc`) and `TraceEvent` construction are confined
//!    to `core::trace`, the metrics crates, and tests; engine code records
//!    through `Tracer`, where the `ProfileLevel::Off` gate lives.
//! 6. [`accountant`] — the allocating scan/aggregation modules must keep
//!    referencing the resource governor's memory accountant
//!    (`governor::MemScope`), so new allocation sites cannot silently
//!    detach from `mem_budget` enforcement.
//! 7. [`atomics`] — every atomic `Ordering::*` use carries an adjacent
//!    `// ORDERING:` justification, and atomics stay confined to the
//!    modules that own concurrent state (pool/governor/batch).
//! 8. [`panics`] — library crates are panic-free: no `.unwrap()` /
//!    `.expect(…)` / `panic!` / `unreachable!` / `todo!` /
//!    `unimplemented!` outside tests and `debug_assert*`, unless pinned
//!    with a `// PANIC:` justification.
//! 9. [`dispatch_matrix`] — the (op × width × tier) dispatch table is
//!    statically extracted and every cell cross-checked against the scalar
//!    oracle registry and the `SimdLevel::available()` equivalence-test
//!    matrix, including numeric width gates.
//!
//! Violations print as `path:line: [pass] message` (or as SARIF with
//! `--json`) and make the binary exit `1`; `2` is reserved for internal
//! errors, so CI can tell "findings" from "the auditor broke". Findings
//! carry line-drift-stable IDs ([`report::stable_ids`]) and can be
//! suppressed either by `path:line` in `crates/xtask/audit-allowlist.txt`
//! or by ID in `crates/xtask/audit-baseline.json`; stale entries in either
//! file are themselves errors, so both can only shrink.

#![forbid(unsafe_code)]

pub mod accountant;
pub mod atomics;
pub mod bench_check;
pub mod dispatch_matrix;
pub mod invariants;
pub mod kernel_contract;
pub mod lexer;
pub mod panics;
pub mod report;
pub mod scan;
pub mod thread_hygiene;
pub mod trace_hygiene;
pub mod unsafe_audit;

use std::fmt;
use std::path::Path;

/// One audit violation, printed as `path:line: [pass] message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diag {
    /// Path relative to the audited root, `/`-separated.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Which pass produced this (`unsafe-audit`, `kernel-contract`,
    /// `invariants`, `thread-hygiene`, `trace-hygiene`, `accountant`,
    /// `atomics-discipline`, `panic-freedom`, `dispatch-matrix`,
    /// `allowlist`, `baseline`).
    pub pass: &'static str,
    /// Human-readable description of the violation.
    pub msg: String,
}

impl fmt::Display for Diag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.path, self.line, self.pass, self.msg)
    }
}

/// Every pass name accepted by [`run_audit`], in execution order.
pub const ALL_PASSES: [&str; 9] = [
    "unsafe",
    "kernels",
    "invariants",
    "threads",
    "trace",
    "accountant",
    "atomics",
    "panics",
    "dispatch",
];

/// Load the audited corpus once and run the requested passes.
///
/// `passes` is a subset of [`ALL_PASSES`]; the allowlist and baseline are
/// always applied. Diagnostics come back sorted by path/line, so the
/// report — text or SARIF — is deterministic across runs and filesystems
/// (the walk itself is sorted too).
pub fn run_audit(root: &Path, passes: &[&str]) -> Vec<Diag> {
    let files: Vec<scan::SourceFile> = scan::workspace_files(root)
        .iter()
        .filter_map(|p| scan::SourceFile::load(root, p))
        .collect();

    let mut diags = Vec::new();
    if passes.contains(&"unsafe") {
        diags.extend(unsafe_audit::check(&files));
    }
    if passes.contains(&"kernels") {
        diags.extend(kernel_contract::check(&files));
    }
    if passes.contains(&"invariants") {
        diags.extend(invariants::check(&files));
    }
    if passes.contains(&"threads") {
        diags.extend(thread_hygiene::check(&files));
    }
    if passes.contains(&"trace") {
        diags.extend(trace_hygiene::check(&files));
    }
    if passes.contains(&"accountant") {
        diags.extend(accountant::check(&files));
    }
    if passes.contains(&"atomics") {
        diags.extend(atomics::check(&files));
    }
    if passes.contains(&"panics") {
        diags.extend(panics::check(&files));
    }
    if passes.contains(&"dispatch") {
        diags.extend(dispatch_matrix::check(&files));
    }
    diags = apply_allowlist(root, diags);
    diags = report::apply_baseline(root, diags);
    diags.sort_by(|a, b| (&a.path, a.line, a.pass).cmp(&(&b.path, b.line, b.pass)));
    diags
}

/// Subtract allowlisted `path:line` entries from `diags`; entries that match
/// nothing are reported as errors themselves, so the allowlist monotonically
/// shrinks toward (and then stays) empty.
fn apply_allowlist(root: &Path, mut diags: Vec<Diag>) -> Vec<Diag> {
    let list = root.join("crates/xtask/audit-allowlist.txt");
    let Ok(text) = std::fs::read_to_string(&list) else {
        return diags;
    };
    for (lineno, raw) in text.lines().enumerate() {
        let entry = raw.trim();
        if entry.is_empty() || entry.starts_with('#') {
            continue;
        }
        let Some((path, line)) = entry
            .rsplit_once(':')
            .and_then(|(p, l)| l.parse::<usize>().ok().map(|n| (p.to_string(), n)))
        else {
            diags.push(Diag {
                path: "crates/xtask/audit-allowlist.txt".into(),
                line: lineno + 1,
                pass: "allowlist",
                msg: format!("malformed entry {entry:?} (expected path:line)"),
            });
            continue;
        };
        let before = diags.len();
        diags.retain(|d| !(d.path == path && d.line == line));
        if diags.len() == before {
            diags.push(Diag {
                path: "crates/xtask/audit-allowlist.txt".into(),
                line: lineno + 1,
                pass: "allowlist",
                msg: format!("stale entry {entry:?} matches no diagnostic — remove it"),
            });
        }
    }
    diags
}
