//! Pass 5: trace hygiene.
//!
//! The profiler's `Off` contract (DESIGN.md §9: one branch, no clock reads,
//! ≤ 2% overhead) lives entirely inside `core::trace::Tracer` — every
//! instrumentation site checks `Tracer::enabled()` before touching a
//! timestamp. A raw cycle-counter read (`read_tsc` / `read_cycles` /
//! `_rdtsc`) or a hand-built `TraceEvent` anywhere else bypasses that gate
//! and silently reintroduces per-batch timing cost that the overhead bench
//! only catches after the fact. This pass flags both outside their
//! sanctioned homes.
//!
//! Allowed locations:
//!
//! * `crates/toolbox/src/cycles.rs` — the one `_rdtsc` wrapper;
//! * `crates/metrics/` — the measurement harness (benchmarks *are* the
//!   timing; they run nothing per batch);
//! * `crates/core/src/trace.rs` — the tracer, where the `Off` gate lives;
//! * test code — integration-test trees and `#[cfg(test)]` modules
//!   (brace-matched), which inspect events and time freely.
//!
//! Engine code that wants a span or a decision logged must go through the
//! `Tracer` API, which is exempt here because it *is* the gate. Matching
//! is token-exact: `read_tsc` must appear as an identifier and
//! `TraceEvent::` as a path prefix, so comments and strings never trip it.
//!
//! The same confinement applies one layer up (DESIGN.md §14): process-wide
//! registry mutation must flow through the `core::telemetry` seam. A
//! `Registry::` / `Counter::` / `Gauge::` / `Histogram::` / `DecisionLog::`
//! / `EngineTelemetry::` path in scan-loop code means a hot path grew its
//! own metrics plumbing, bypassing both the `no_metrics` compile-out and
//! the publish-once-per-query overhead contract. Allowed homes:
//! `crates/metrics/` (the substrate itself), `crates/core/src/telemetry.rs`
//! (the seam), and test/bench/example code that reads snapshots.

use crate::lexer::TokKind;
use crate::scan::SourceFile;
use crate::Diag;

/// Cycle-counter identifiers that must stay inside the sanctioned modules.
const TRACE_IDENTS: [&str; 3] = ["read_tsc", "read_cycles", "_rdtsc"];

/// Files/prefixes where the tokens are legitimate.
const ALLOWED: [&str; 3] =
    ["crates/toolbox/src/cycles.rs", "crates/metrics/", "crates/core/src/trace.rs"];

/// Additional files that may *consume* `TraceEvent` values (pattern-match
/// finished profiles) without being allowed raw cycle reads: the telemetry
/// seam ingests span rings after the query, never on the hot path.
const EVENT_CONSUMERS: [&str; 1] = ["crates/core/src/telemetry.rs"];

/// Registry/telemetry type paths whose *mutation* must stay behind the
/// `core::telemetry` seam.
const REGISTRY_PATHS: [&str; 6] =
    ["Registry::", "Counter::", "Gauge::", "Histogram::", "DecisionLog::", "EngineTelemetry::"];

/// Files/prefixes where registry paths are legitimate: the metrics crate
/// and the telemetry seam. Benches and examples read snapshots through the
/// `telemetry()` handle, which is not a path token, so they need no
/// exemption.
const REGISTRY_ALLOWED: [&str; 2] = ["crates/metrics/", "crates/core/src/telemetry.rs"];

/// Run the trace-hygiene pass.
pub fn check(files: &[SourceFile]) -> Vec<Diag> {
    let mut out = Vec::new();
    for file in files {
        if ALLOWED.iter().any(|a| file.rel.starts_with(a)) || file.is_test_file() {
            continue;
        }
        if file.toks.is_empty() {
            check_fallback(file, &mut out);
            continue;
        }
        for tok in &file.toks {
            if tok.kind == TokKind::Ident
                && TRACE_IDENTS.contains(&tok.text(&file.text))
                && !file.line_in_tests(tok.line)
            {
                out.push(diag(file, tok.line, tok.text(&file.text)));
            }
        }
        if EVENT_CONSUMERS.contains(&file.rel.as_str()) {
            continue;
        }
        for tok in file.find_path("TraceEvent::") {
            if !file.line_in_tests(tok.line) {
                out.push(diag(file, tok.line, "TraceEvent::"));
            }
        }
    }
    for file in files {
        if REGISTRY_ALLOWED.iter().any(|a| file.rel.starts_with(a)) || file.is_test_file() {
            continue;
        }
        if file.toks.is_empty() {
            registry_fallback(file, &mut out);
            continue;
        }
        for path in REGISTRY_PATHS {
            for tok in file.find_path(path) {
                if !file.line_in_tests(tok.line) {
                    out.push(registry_diag(file, tok.line, path));
                }
            }
        }
    }
    out.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    out
}

/// Legacy substring scan for files the lexer could not finish.
fn check_fallback(file: &SourceFile, out: &mut Vec<Diag>) {
    for (i, line) in file.code.iter().enumerate() {
        if file.line_in_tests(i) {
            continue;
        }
        for token in TRACE_IDENTS.iter().copied().chain(["TraceEvent::"]) {
            if line.contains(token) {
                out.push(diag(file, i, token));
            }
        }
    }
}

fn diag(file: &SourceFile, line: usize, token: &str) -> Diag {
    Diag {
        path: file.rel.clone(),
        line: line + 1,
        pass: "trace-hygiene",
        msg: format!(
            "`{token}` outside core::trace/metrics — record through \
             `Tracer` so the ProfileLevel::Off gate applies"
        ),
    }
}

/// Legacy substring scan for registry paths in files the lexer could not
/// finish.
fn registry_fallback(file: &SourceFile, out: &mut Vec<Diag>) {
    for (i, line) in file.code.iter().enumerate() {
        if file.line_in_tests(i) {
            continue;
        }
        for path in REGISTRY_PATHS {
            if line.contains(path) {
                out.push(registry_diag(file, i, path));
            }
        }
    }
}

fn registry_diag(file: &SourceFile, line: usize, token: &str) -> Diag {
    Diag {
        path: file.rel.clone(),
        line: line + 1,
        pass: "trace-hygiene",
        msg: format!(
            "`{token}` outside the core::telemetry seam — publish through \
             `EngineTelemetry` so the no_metrics gate and the \
             once-per-query overhead contract apply"
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(rel: &str, src: &str) -> SourceFile {
        SourceFile::from_source(rel, src)
    }

    #[test]
    fn raw_tsc_read_in_engine_code_is_flagged() {
        let f =
            file("crates/core/src/scan.rs", "fn f() -> u64 { bipie_toolbox::cycles::read_tsc() }");
        let diags = check(&[f]);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].msg.contains("read_tsc"), "{diags:?}");
    }

    #[test]
    fn hand_built_event_is_flagged() {
        let f = file(
            "crates/core/src/query.rs",
            "fn f() { let e = TraceEvent::Span { phase, worker, loc, rows, cycles, wall_nanos }; }",
        );
        assert_eq!(check(&[f]).len(), 1);
    }

    #[test]
    fn rdtsc_intrinsic_is_flagged_anywhere_unsanctioned() {
        let f = file(
            "crates/columnstore/src/batch.rs",
            "fn f() -> u64 { unsafe { std::arch::x86_64::_rdtsc() } }",
        );
        assert_eq!(check(&[f]).len(), 1);
    }

    #[test]
    fn sanctioned_modules_are_exempt() {
        for rel in [
            "crates/toolbox/src/cycles.rs",
            "crates/metrics/src/measure.rs",
            "crates/metrics/src/cycles.rs",
            "crates/core/src/trace.rs",
        ] {
            let f = file(rel, "fn f() -> u64 { read_cycles() + read_tsc() }");
            assert!(check(&[f]).is_empty(), "{rel}");
        }
    }

    #[test]
    fn test_paths_and_cfg_test_tails_are_exempt() {
        let integration = file("tests/profile.rs", "fn f() { let _ = TraceEvent::Span; }");
        let unit = file(
            "crates/core/src/stats.rs",
            "pub fn real() {}\n#[cfg(test)]\nmod tests { fn t() -> u64 { read_cycles() } }",
        );
        assert!(check(&[integration, unit]).is_empty());
    }

    #[test]
    fn tracer_api_calls_are_fine() {
        let f = file(
            "crates/core/src/scan.rs",
            "fn f(t: &mut Tracer) { let s = t.start(); t.span(Phase::Selection, SpanLoc::none(), 1, s); }",
        );
        assert!(check(&[f]).is_empty());
    }

    #[test]
    fn telemetry_seam_may_consume_events_but_not_read_clocks() {
        let consume = file(
            "crates/core/src/telemetry.rs",
            "fn f(e: &TraceEvent) { if let TraceEvent::Span { .. } = e {} }",
        );
        assert!(check(&[consume]).is_empty());
        let clock = file("crates/core/src/telemetry.rs", "fn f() -> u64 { read_tsc() }");
        assert_eq!(check(&[clock]).len(), 1);
    }

    #[test]
    fn registry_mutation_outside_seam_is_flagged() {
        let f = file("crates/core/src/scan.rs", "fn f(c: &Counter) { Counter::inc(c); }");
        let diags = check(&[f]);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].msg.contains("core::telemetry seam"), "{diags:?}");
    }

    #[test]
    fn seam_and_metrics_crate_registry_paths_are_exempt() {
        for rel in ["crates/core/src/telemetry.rs", "crates/metrics/src/registry.rs"] {
            let f = file(rel, "fn f() { let r = Registry::new(); let _ = r; }");
            assert!(check(&[f]).is_empty(), "{rel}");
        }
    }

    #[test]
    fn telemetry_handle_reads_are_fine() {
        // Benches/examples read snapshots through the `telemetry()` fn;
        // no registry type path appears, so nothing trips.
        let f = file(
            "crates/bench/src/bin/exp_telemetry.rs",
            "fn f() -> String { telemetry().registry().render_json() }",
        );
        assert!(check(&[f]).is_empty());
    }

    #[test]
    fn prose_mentions_do_not_trip_the_token_scan() {
        let f = file(
            "crates/core/src/scan.rs",
            "// timing uses read_tsc via the Tracer\nfn f() { let s = \"read_cycles\"; }",
        );
        assert!(check(&[f]).is_empty());
    }
}
