//! Pass 5: trace hygiene.
//!
//! The profiler's `Off` contract (DESIGN.md §9: one branch, no clock reads,
//! ≤ 2% overhead) lives entirely inside `core::trace::Tracer` — every
//! instrumentation site checks `Tracer::enabled()` before touching a
//! timestamp. A raw cycle-counter read (`read_tsc` / `read_cycles` /
//! `_rdtsc`) or a hand-built `TraceEvent` anywhere else bypasses that gate
//! and silently reintroduces per-batch timing cost that the overhead bench
//! only catches after the fact. This pass flags both outside their
//! sanctioned homes.
//!
//! Allowed locations:
//!
//! * `crates/toolbox/src/cycles.rs` — the one `_rdtsc` wrapper;
//! * `crates/metrics/` — the measurement harness (benchmarks *are* the
//!   timing; they run nothing per batch);
//! * `crates/core/src/trace.rs` — the tracer, where the `Off` gate lives;
//! * test code — integration-test trees and `#[cfg(test)]` modules, which
//!   inspect events and time freely.
//!
//! Engine code that wants a span or a decision logged must go through the
//! `Tracer` API, which is exempt here because it *is* the gate.

use crate::scan::SourceFile;
use crate::Diag;

/// Cycle-counter reads and raw event construction that must stay inside the
/// sanctioned modules.
const TRACE_TOKENS: [&str; 4] = ["read_tsc", "read_cycles", "_rdtsc", "TraceEvent::"];

/// Files/prefixes where the tokens are legitimate.
const ALLOWED: [&str; 3] =
    ["crates/toolbox/src/cycles.rs", "crates/metrics/", "crates/core/src/trace.rs"];

/// Run the trace-hygiene pass.
pub fn check(files: &[SourceFile]) -> Vec<Diag> {
    let mut out = Vec::new();
    for file in files {
        if ALLOWED.iter().any(|a| file.rel.starts_with(a)) || is_test_path(&file.rel) {
            continue;
        }
        // Lines at or below the first `#[cfg(test)]` marker are unit-test
        // code (test modules sit at the bottom of the file by convention,
        // as in the thread-hygiene pass).
        let first_test_line =
            file.code.iter().position(|l| l.contains("#[cfg(test)]")).unwrap_or(usize::MAX);
        for (i, line) in file.code.iter().enumerate() {
            if i >= first_test_line {
                break;
            }
            for token in TRACE_TOKENS {
                if line.contains(token) {
                    out.push(Diag {
                        path: file.rel.clone(),
                        line: i + 1,
                        pass: "trace-hygiene",
                        msg: format!(
                            "`{token}` outside core::trace/metrics — record through \
                             `Tracer` so the ProfileLevel::Off gate applies"
                        ),
                    });
                }
            }
        }
    }
    out
}

/// Whether `rel` is an integration-test path (`tests/` at the top level or
/// inside any crate).
fn is_test_path(rel: &str) -> bool {
    rel.starts_with("tests/") || rel.contains("/tests/")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scrub;

    fn file(rel: &str, src: &str) -> SourceFile {
        SourceFile {
            rel: rel.into(),
            raw: src.lines().map(str::to_owned).collect(),
            code: scrub(src).lines().map(str::to_owned).collect(),
        }
    }

    #[test]
    fn raw_tsc_read_in_engine_code_is_flagged() {
        let f =
            file("crates/core/src/scan.rs", "fn f() -> u64 { bipie_toolbox::cycles::read_tsc() }");
        let diags = check(&[f]);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].msg.contains("read_tsc"), "{diags:?}");
    }

    #[test]
    fn hand_built_event_is_flagged() {
        let f = file(
            "crates/core/src/query.rs",
            "fn f() { let e = TraceEvent::Span { phase, worker, loc, rows, cycles, wall_nanos }; }",
        );
        assert_eq!(check(&[f]).len(), 1);
    }

    #[test]
    fn rdtsc_intrinsic_is_flagged_anywhere_unsanctioned() {
        let f = file(
            "crates/columnstore/src/batch.rs",
            "fn f() -> u64 { unsafe { std::arch::x86_64::_rdtsc() } }",
        );
        assert_eq!(check(&[f]).len(), 1);
    }

    #[test]
    fn sanctioned_modules_are_exempt() {
        for rel in [
            "crates/toolbox/src/cycles.rs",
            "crates/metrics/src/measure.rs",
            "crates/metrics/src/cycles.rs",
            "crates/core/src/trace.rs",
        ] {
            let f = file(rel, "fn f() -> u64 { read_cycles() + read_tsc() }");
            assert!(check(&[f]).is_empty(), "{rel}");
        }
    }

    #[test]
    fn test_paths_and_cfg_test_tails_are_exempt() {
        let integration = file("tests/profile.rs", "fn f() { let _ = TraceEvent::Span; }");
        let unit = file(
            "crates/core/src/stats.rs",
            "pub fn real() {}\n#[cfg(test)]\nmod tests { fn t() -> u64 { read_cycles() } }",
        );
        assert!(check(&[integration, unit]).is_empty());
    }

    #[test]
    fn tracer_api_calls_are_fine() {
        let f = file(
            "crates/core/src/scan.rs",
            "fn f(t: &mut Tracer) { let s = t.start(); t.span(Phase::Selection, SpanLoc::none(), 1, s); }",
        );
        assert!(check(&[f]).is_empty());
    }

    #[test]
    fn prose_mentions_do_not_trip_the_scrubbed_scan() {
        let f = file(
            "crates/core/src/scan.rs",
            "// timing uses read_tsc via the Tracer\nfn f() { let s = \"read_cycles\"; }",
        );
        assert!(check(&[f]).is_empty());
    }
}
