//! `cargo xtask` — repo-local developer tooling.
//!
//! Usage:
//!
//! ```text
//! cargo xtask audit                 # run all passes on the workspace
//! cargo xtask audit unsafe          # one pass: unsafe | kernels |
//!                                   #   invariants | threads | trace |
//!                                   #   accountant
//! cargo xtask audit --root <path>   # audit a different tree (used by tests)
//! cargo xtask bench-check           # validate committed BENCH_*.json schema
//! ```

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("audit") => audit(&args[1..]),
        Some("bench-check") => bench_check(&args[1..]),
        _ => {
            eprintln!(
                "usage: cargo xtask audit [unsafe|kernels|invariants|threads|trace|accountant] \
                 [--root <path>]\n       cargo xtask bench-check [--root <path>]"
            );
            ExitCode::from(2)
        }
    }
}

fn bench_check(args: &[String]) -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--root needs a path");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.unwrap_or_else(default_root);
    let msgs = xtask::bench_check::check_root(&root);
    for m in &msgs {
        println!("{m}");
    }
    if msgs.is_empty() {
        println!("bench-check OK");
        ExitCode::SUCCESS
    } else {
        println!("bench-check FAILED: {} problem(s)", msgs.len());
        ExitCode::FAILURE
    }
}

// The xtask crate sits at <root>/crates/xtask, so the workspace root is two
// levels up from the manifest dir.
fn default_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().unwrap()
}

fn audit(args: &[String]) -> ExitCode {
    let mut passes: Vec<&str> = Vec::new();
    let mut root: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--root needs a path");
                    return ExitCode::from(2);
                }
            },
            "unsafe" | "kernels" | "invariants" | "threads" | "trace" | "accountant" => passes
                .push(match arg.as_str() {
                    "unsafe" => "unsafe",
                    "kernels" => "kernels",
                    "invariants" => "invariants",
                    "threads" => "threads",
                    "accountant" => "accountant",
                    _ => "trace",
                }),
            other => {
                eprintln!("unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    if passes.is_empty() {
        passes = vec!["unsafe", "kernels", "invariants", "threads", "trace", "accountant"];
    }
    let root = root.unwrap_or_else(default_root);

    let diags = xtask::run_audit(&root, &passes);
    for d in &diags {
        println!("{d}");
    }
    if diags.is_empty() {
        println!("audit OK ({} passes clean)", passes.len());
        ExitCode::SUCCESS
    } else {
        println!("audit FAILED: {} diagnostic(s)", diags.len());
        ExitCode::FAILURE
    }
}
