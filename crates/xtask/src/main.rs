//! `cargo xtask` — repo-local developer tooling.
//!
//! Usage:
//!
//! ```text
//! cargo xtask audit                  # run all passes on the workspace
//! cargo xtask audit panics           # one pass: unsafe | kernels |
//!                                    #   invariants | threads | trace |
//!                                    #   accountant | atomics | panics |
//!                                    #   dispatch | locks | sync |
//!                                    #   errors | layers
//! cargo xtask audit --json           # SARIF 2.1.0 on stdout, with
//!                                    #   per-pass wall times in the run
//!                                    #   property bag
//! cargo xtask audit --explain locks  # rule / rationale / example fix
//! cargo xtask audit --write-baseline # suppress current findings by ID
//! cargo xtask audit --root <path>    # audit a different tree (tests)
//! cargo xtask bench-check            # validate committed BENCH_*.json
//! ```
//!
//! Audit exit codes: `0` clean, `1` findings, `2` internal error (bad
//! usage, unwritable baseline). CI keys off this to distinguish "the tree
//! regressed" from "the auditor broke".

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("audit") => audit(&args[1..]),
        Some("bench-check") => bench_check(&args[1..]),
        _ => {
            eprintln!(
                "usage: cargo xtask audit [{}] [--json] [--explain <pass>] [--write-baseline] \
                 [--root <path>]\n       \
                 cargo xtask bench-check [--root <path>]",
                xtask::ALL_PASSES.join("|")
            );
            ExitCode::from(2)
        }
    }
}

fn bench_check(args: &[String]) -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--root needs a path");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.unwrap_or_else(default_root);
    let msgs = xtask::bench_check::check_root(&root);
    for m in &msgs {
        println!("{m}");
    }
    if msgs.is_empty() {
        println!("bench-check OK");
        ExitCode::SUCCESS
    } else {
        println!("bench-check FAILED: {} problem(s)", msgs.len());
        ExitCode::FAILURE
    }
}

// The xtask crate sits at <root>/crates/xtask, so the workspace root is two
// levels up from the manifest dir.
fn default_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().unwrap()
}

fn audit(args: &[String]) -> ExitCode {
    let mut passes: Vec<&str> = Vec::new();
    let mut root: Option<PathBuf> = None;
    let mut json = false;
    let mut write_baseline = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--root needs a path");
                    return ExitCode::from(2);
                }
            },
            "--json" => json = true,
            "--explain" => match it.next() {
                Some(name) => match xtask::explain::lookup(name) {
                    Some(entry) => {
                        print!("{}", xtask::explain::render(entry));
                        return ExitCode::SUCCESS;
                    }
                    None => {
                        eprintln!(
                            "unknown pass `{name}` (expected one of: {})",
                            xtask::ALL_PASSES.join(", ")
                        );
                        return ExitCode::from(2);
                    }
                },
                None => {
                    eprintln!("--explain needs a pass name");
                    return ExitCode::from(2);
                }
            },
            "--write-baseline" => write_baseline = true,
            other => match xtask::ALL_PASSES.iter().find(|p| **p == other) {
                Some(p) => passes.push(p),
                None => {
                    eprintln!("unknown argument `{other}`");
                    return ExitCode::from(2);
                }
            },
        }
    }
    if passes.is_empty() {
        passes = xtask::ALL_PASSES.to_vec();
    }
    let root = root.unwrap_or_else(default_root);

    let outcome = xtask::run_audit_timed(&root, &passes);
    let diags = outcome.diags;

    if write_baseline {
        let ids = xtask::report::stable_ids(&diags);
        let path = root.join(xtask::report::BASELINE_PATH);
        if let Err(e) = std::fs::write(&path, xtask::report::render_baseline(&ids)) {
            eprintln!("cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("baseline written: {} finding(s) suppressed", ids.len());
        return ExitCode::SUCCESS;
    }

    if json {
        print!("{}", xtask::report::to_sarif_timed(&diags, &outcome.timings));
    } else {
        for d in &diags {
            println!("{d}");
        }
        if diags.is_empty() {
            println!("audit OK ({} passes clean)", passes.len());
        } else {
            println!("audit FAILED: {} diagnostic(s)", diags.len());
        }
    }
    if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
