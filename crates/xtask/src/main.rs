//! `cargo xtask` — repo-local developer tooling.
//!
//! Usage:
//!
//! ```text
//! cargo xtask audit                 # run all passes on the workspace
//! cargo xtask audit unsafe          # one pass: unsafe | kernels |
//!                                   #   invariants | threads | trace
//! cargo xtask audit --root <path>   # audit a different tree (used by tests)
//! ```

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("audit") => audit(&args[1..]),
        _ => {
            eprintln!(
                "usage: cargo xtask audit [unsafe|kernels|invariants|threads|trace] \
                 [--root <path>]"
            );
            ExitCode::from(2)
        }
    }
}

fn audit(args: &[String]) -> ExitCode {
    let mut passes: Vec<&str> = Vec::new();
    let mut root: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--root needs a path");
                    return ExitCode::from(2);
                }
            },
            "unsafe" | "kernels" | "invariants" | "threads" | "trace" => {
                passes.push(match arg.as_str() {
                    "unsafe" => "unsafe",
                    "kernels" => "kernels",
                    "invariants" => "invariants",
                    "threads" => "threads",
                    _ => "trace",
                })
            }
            other => {
                eprintln!("unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    if passes.is_empty() {
        passes = vec!["unsafe", "kernels", "invariants", "threads", "trace"];
    }
    // The xtask crate sits at <root>/crates/xtask, so the workspace root is
    // two levels up from the manifest dir.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().unwrap()
    });

    let diags = xtask::run_audit(&root, &passes);
    for d in &diags {
        println!("{d}");
    }
    if diags.is_empty() {
        println!("audit OK ({} passes clean)", passes.len());
        ExitCode::SUCCESS
    } else {
        println!("audit FAILED: {} diagnostic(s)", diags.len());
        ExitCode::FAILURE
    }
}
