//! `cargo xtask` — repo-local developer tooling.
//!
//! Usage:
//!
//! ```text
//! cargo xtask audit                  # run all passes on the workspace
//! cargo xtask audit panics           # one pass: unsafe | kernels |
//!                                    #   invariants | threads | trace |
//!                                    #   accountant | atomics | panics |
//!                                    #   dispatch | locks | sync |
//!                                    #   errors | layers | checkpoints |
//!                                    #   spans | telemetry | safety
//! cargo xtask audit --json           # SARIF 2.1.0 on stdout, with
//!                                    #   per-pass wall times and CFG
//!                                    #   lowering coverage in the run
//!                                    #   property bag
//! cargo xtask audit --changed        # all passes, findings filtered to
//!                                    #   files the git working tree
//!                                    #   touches plus their module parents
//! cargo xtask audit --explain locks  # rule / rationale / example fix
//! cargo xtask audit --write-baseline # suppress current findings by ID
//! cargo xtask audit --enforce-budget # fail if audit wall time exceeds
//!                                    #   crates/xtask/audit-budget.txt ms
//! cargo xtask audit --root <path>    # audit a different tree (tests)
//! cargo xtask bench-check            # validate committed BENCH_*.json
//! ```
//!
//! Audit exit codes: `0` clean, `1` findings (or budget exceeded under
//! `--enforce-budget`), `2` internal error (bad usage, unwritable baseline,
//! git failure under `--changed`). `--changed` keeps exit-code parity with
//! the full run: a scoped run that surfaces findings exits `1` exactly like
//! `cargo xtask audit` would, so pre-push hooks can substitute it for the
//! full gate without remapping codes. CI keys off this to distinguish "the
//! tree regressed" from "the auditor broke".

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("audit") => audit(&args[1..]),
        Some("bench-check") => bench_check(&args[1..]),
        _ => {
            eprintln!(
                "usage: cargo xtask audit [{}] [--json] [--changed] [--explain <pass>] \
                 [--write-baseline] [--enforce-budget] [--root <path>]\n       \
                 cargo xtask bench-check [--root <path>]",
                xtask::ALL_PASSES.join("|")
            );
            ExitCode::from(2)
        }
    }
}

fn bench_check(args: &[String]) -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--root needs a path");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.unwrap_or_else(default_root);
    let msgs = xtask::bench_check::check_root(&root);
    for m in &msgs {
        println!("{m}");
    }
    if msgs.is_empty() {
        println!("bench-check OK");
        ExitCode::SUCCESS
    } else {
        println!("bench-check FAILED: {} problem(s)", msgs.len());
        ExitCode::FAILURE
    }
}

// The xtask crate sits at <root>/crates/xtask, so the workspace root is two
// levels up from the manifest dir.
fn default_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().unwrap()
}

fn audit(args: &[String]) -> ExitCode {
    let mut passes: Vec<&str> = Vec::new();
    let mut root: Option<PathBuf> = None;
    let mut json = false;
    let mut write_baseline = false;
    let mut changed = false;
    let mut enforce_budget = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--root needs a path");
                    return ExitCode::from(2);
                }
            },
            "--json" => json = true,
            "--changed" => changed = true,
            "--enforce-budget" => enforce_budget = true,
            "--explain" => match it.next() {
                Some(name) => match xtask::explain::lookup(name) {
                    Some(entry) => {
                        print!("{}", xtask::explain::render(entry));
                        return ExitCode::SUCCESS;
                    }
                    None => {
                        eprintln!(
                            "unknown pass `{name}` (expected one of: {})",
                            xtask::ALL_PASSES.join(", ")
                        );
                        return ExitCode::from(2);
                    }
                },
                None => {
                    eprintln!("--explain needs a pass name");
                    return ExitCode::from(2);
                }
            },
            "--write-baseline" => write_baseline = true,
            other => match xtask::ALL_PASSES.iter().find(|p| **p == other) {
                Some(p) => passes.push(p),
                None => {
                    eprintln!("unknown argument `{other}`");
                    return ExitCode::from(2);
                }
            },
        }
    }
    if passes.is_empty() {
        passes = xtask::ALL_PASSES.to_vec();
    }
    if changed && write_baseline {
        // A baseline written from a scoped run would silently drop every
        // suppression outside the scope; only the full run may write it.
        eprintln!("--changed cannot be combined with --write-baseline");
        return ExitCode::from(2);
    }
    let root = root.unwrap_or_else(default_root);

    let audit_start = std::time::Instant::now();
    let outcome = xtask::run_audit_timed(&root, &passes);
    let wall_ms = audit_start.elapsed().as_millis();
    let mut diags = outcome.diags;

    if changed {
        match xtask::changed_files(&root) {
            Ok(files) => diags = xtask::scope_to_changed(diags, &files),
            Err(e) => {
                eprintln!("--changed: {e}");
                return ExitCode::from(2);
            }
        }
    }

    if write_baseline {
        let ids = xtask::report::stable_ids(&diags);
        let path = root.join(xtask::report::BASELINE_PATH);
        if let Err(e) = std::fs::write(&path, xtask::report::render_baseline(&ids)) {
            eprintln!("cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("baseline written: {} finding(s) suppressed", ids.len());
        return ExitCode::SUCCESS;
    }

    if json {
        print!(
            "{}",
            xtask::report::to_sarif_full(&diags, &outcome.timings, Some(&outcome.coverage))
        );
    } else {
        for d in &diags {
            println!("{d}");
        }
        if diags.is_empty() {
            println!("audit OK ({} passes clean)", passes.len());
        } else {
            println!("audit FAILED: {} diagnostic(s)", diags.len());
        }
    }
    if enforce_budget {
        let path = root.join("crates/xtask/audit-budget.txt");
        let budget_ms: u128 = match std::fs::read_to_string(&path)
            .map_err(|e| e.to_string())
            .and_then(|s| s.trim().parse().map_err(|e: std::num::ParseIntError| e.to_string()))
        {
            Ok(ms) => ms,
            Err(e) => {
                eprintln!("cannot read budget {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        if wall_ms > budget_ms {
            println!("audit budget EXCEEDED: {wall_ms}ms > {budget_ms}ms");
            return ExitCode::FAILURE;
        }
        println!("audit wall time {wall_ms}ms within budget {budget_ms}ms");
    }
    if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
