//! Pass 12: error surface.
//!
//! `EngineError` is the engine's entire recoverable-failure vocabulary:
//! the governor's budget trips, the planner's type checks, the pool's
//! panic transport all speak through it. Two forms of rot threaten that
//! surface. A variant can go *dead* — its last construction site
//! refactored away while the variant (and callers matching on it) linger —
//! or go *untested* — constructed in the library but never exercised by a
//! test, so its error path bit-rots silently. And results can be
//! *swallowed*: a `let _ = scan(…)` or `….ok()` in library code turns a
//! budget trip or cancellation into silent wrong behavior.
//!
//! Concretely, using the item parser over the whole workspace:
//!
//! * every `EngineError` variant must have at least one **construction
//!   site** in non-test library code — `EngineError::Variant` in value
//!   position (match arms and `if let` patterns, e.g. the `Display` impl,
//!   don't count);
//! * every variant must be **mentioned in test code** at least once, so
//!   each error path has a witness;
//! * library statements must not discard an engine `Result` via `let _ =`
//!   or `.ok()`. "Engine result" is computed from parsed fn signatures:
//!   any fn returning `Result<_, EngineError>` or the `core::error::Result`
//!   alias. Handle the error or propagate it with `?`.

use std::collections::BTreeSet;

use crate::lexer::TokKind;
use crate::parser::{walk_items, ItemKind};
use crate::scan::SourceFile;
use crate::Diag;

/// The enum whose variants define the engine's error surface.
pub const ERROR_ENUM: &str = "EngineError";

/// Run the error-surface pass.
pub fn check(files: &[SourceFile]) -> Vec<Diag> {
    let mut out = Vec::new();

    // The error enum's definition site(s) and variant list.
    let mut variants: Vec<(String, String, usize)> = Vec::new(); // (name, file, line)
    for file in files {
        walk_items(&file.items, &mut |item| {
            if item.kind == ItemKind::Enum && item.name == ERROR_ENUM {
                for (v, line) in &item.variants {
                    variants.push((v.clone(), file.rel.clone(), *line));
                }
            }
        });
    }

    let engine_fns = engine_result_fns(files);

    let mut constructed: BTreeSet<String> = BTreeSet::new();
    let mut tested: BTreeSet<String> = BTreeSet::new();
    let names: BTreeSet<&str> = variants.iter().map(|(v, _, _)| v.as_str()).collect();

    for file in files {
        if file.toks.is_empty() {
            continue;
        }
        scan_mentions(file, &names, &mut constructed, &mut tested);
        if !file.is_test_file() && file.rel.contains("src/") {
            scan_discards(file, &engine_fns, &mut out);
        }
    }

    for (v, rel, line) in &variants {
        if !constructed.contains(v) {
            out.push(Diag {
                path: rel.clone(),
                line: line + 1,
                pass: "error-surface",
                msg: format!(
                    "variant `{ERROR_ENUM}::{v}` has no construction site in library \
                     code — dead error vocabulary; construct it or remove it"
                ),
            });
        }
        if !tested.contains(v) {
            out.push(Diag {
                path: rel.clone(),
                line: line + 1,
                pass: "error-surface",
                msg: format!(
                    "variant `{ERROR_ENUM}::{v}` never appears in a test — every \
                     error path needs a witness exercising it"
                ),
            });
        }
    }

    out.sort_by(|a, b| (&a.path, a.line, &a.msg).cmp(&(&b.path, b.line, &b.msg)));
    out.dedup_by(|a, b| a.path == b.path && a.line == b.line && a.msg == b.msg);
    out
}

/// Names of fns whose return type is an engine `Result`.
fn engine_result_fns(files: &[SourceFile]) -> BTreeSet<String> {
    let mut fns = BTreeSet::new();
    for file in files {
        let alias_in_scope =
            file.rel.starts_with("crates/core/src/") || imports_engine_result_alias(file);
        walk_items(&file.items, &mut |item| {
            if item.kind == ItemKind::Fn && returns_engine_result(&item.signature, alias_in_scope) {
                fns.insert(item.name.clone());
            }
        });
    }
    fns
}

/// Does the file `use` the `core::error::Result` alias?
fn imports_engine_result_alias(file: &SourceFile) -> bool {
    let mut found = false;
    walk_items(&file.items, &mut |item| {
        if item.kind != ItemKind::Use {
            return;
        }
        for path in &item.use_paths {
            if path.last().is_some_and(|s| s == "Result")
                && path.iter().any(|s| s == "bipie_core" || s == "error")
            {
                found = true;
            }
        }
    });
    found
}

/// Does a space-joined fn signature return `Result<_, EngineError>` (or the
/// single-argument engine alias, when it is in scope)?
fn returns_engine_result(sig: &str, alias_in_scope: bool) -> bool {
    let words: Vec<&str> = sig.split_whitespace().collect();
    // Find the return-type `Result <` (tokens render `->` as `- >`).
    let Some(ret) = words.windows(2).position(|w| w[0] == "-" && w[1] == ">") else {
        return false;
    };
    let Some(start) = words[ret..].iter().position(|&w| w == "Result").map(|p| ret + p) else {
        return false;
    };
    if words.get(start + 1) != Some(&"<") {
        return false;
    }
    // Split the angle-bracketed argument list at top level.
    let mut depth = 0i64;
    let mut args = 1usize;
    let mut tail_has_engine = false;
    for &w in &words[start + 1..] {
        match w {
            "<" | "(" | "[" => depth += 1,
            ">" | ")" | "]" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            "," if depth == 1 => args += 1,
            _ if args >= 2 && w == ERROR_ENUM => tail_has_engine = true,
            _ => {}
        }
    }
    if args >= 2 {
        tail_has_engine
    } else {
        alias_in_scope
    }
}

/// Record construction sites (library, value position) and test mentions of
/// the error variants in one file.
fn scan_mentions(
    file: &SourceFile,
    names: &BTreeSet<&str>,
    constructed: &mut BTreeSet<String>,
    tested: &mut BTreeSet<String>,
) {
    let toks = &file.toks;
    let code: Vec<usize> = (0..toks.len())
        .filter(|&i| !matches!(toks[i].kind, TokKind::LineComment | TokKind::BlockComment))
        .collect();
    let text = |k: usize| -> &str { code.get(k).map_or("", |&i| toks[i].text(&file.text)) };
    for k in 0..code.len() {
        let in_test = file.is_test_file() || file.line_in_tests(toks[code[k]].line);
        if in_test
            && toks[code[k]].kind == TokKind::Ident
            && names.contains(text(k))
            && text(k) != ERROR_ENUM
        {
            tested.insert(text(k).to_string());
            continue;
        }
        if in_test || text(k) != ERROR_ENUM {
            continue;
        }
        // `EngineError :: Variant` in library code: value position?
        if text(k + 1) != ":" || text(k + 2) != ":" || !names.contains(text(k + 3)) {
            continue;
        }
        let variant = text(k + 3).to_string();
        // Skip an optional balanced payload after the variant.
        let mut j = k + 4;
        if text(j) == "(" || text(j) == "{" {
            let mut depth = 0i64;
            while j < code.len() {
                match text(j) {
                    "(" | "{" | "[" => depth += 1,
                    ")" | "}" | "]" => {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        // `=> …` marks a match arm, a bare `=` an `if let` pattern; neither
        // is a construction.
        let is_pattern = text(j) == "=";
        if !is_pattern {
            constructed.insert(variant);
        }
    }
}

/// Flag statements that discard an engine `Result` via `let _ =` or `.ok()`.
fn scan_discards(file: &SourceFile, engine_fns: &BTreeSet<String>, out: &mut Vec<Diag>) {
    let toks = &file.toks;
    let code: Vec<usize> = (0..toks.len())
        .filter(|&i| !matches!(toks[i].kind, TokKind::LineComment | TokKind::BlockComment))
        .collect();
    let text = |k: usize| -> &str { code.get(k).map_or("", |&i| toks[i].text(&file.text)) };
    let mut stmt_start = 0usize;
    for k in 0..code.len() {
        match text(k) {
            ";" | "{" | "}" => {
                let stmt = stmt_start..k;
                stmt_start = k + 1;
                let first = stmt.start;
                if file.line_in_tests(toks[code[first]].line) {
                    continue;
                }
                let calls_engine = |range: std::ops::Range<usize>| {
                    range.clone().any(|i| {
                        toks[code[i]].kind == TokKind::Ident
                            && engine_fns.contains(text(i))
                            && text(i + 1) == "("
                    })
                };
                if text(first) == "let"
                    && text(first + 1) == "_"
                    && text(first + 2) == "="
                    && calls_engine(stmt.clone())
                {
                    out.push(discard_diag(file, toks[code[first]].line, "`let _ = …`"));
                }
                for j in stmt.clone() {
                    if text(j) == "."
                        && text(j + 1) == "ok"
                        && text(j + 2) == "("
                        && text(j + 3) == ")"
                        && calls_engine(stmt.start..j)
                    {
                        out.push(discard_diag(file, toks[code[j]].line, "`.ok()`"));
                        break;
                    }
                }
            }
            _ => {}
        }
    }
}

fn discard_diag(file: &SourceFile, line: usize, how: &str) -> Diag {
    Diag {
        path: file.rel.clone(),
        line: line + 1,
        pass: "error-surface",
        msg: format!(
            "engine `Result` discarded via {how} — a budget trip or cancellation \
             would vanish silently; handle the error or propagate it with `?`"
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(files: &[(&str, &str)]) -> Vec<Diag> {
        let files: Vec<SourceFile> =
            files.iter().map(|(rel, src)| SourceFile::from_source(rel, src)).collect();
        check(&files)
    }

    const ENUM: &str = "pub enum EngineError {\n    UnknownColumn(String),\n    Cancelled,\n}\npub type Result<T> = std::result::Result<T, EngineError>;";

    #[test]
    fn constructed_and_tested_variants_are_clean() {
        let lib = "use crate::error::{EngineError, Result};\npub fn find(n: &str) -> Result<u32> {\n    Err(EngineError::UnknownColumn(n.into()))\n}\npub fn stop() -> Result<()> {\n    Err(EngineError::Cancelled)\n}";
        let test = "#[test]\nfn paths() {\n    assert!(matches!(find(\"x\"), Err(EngineError::UnknownColumn(_))));\n    assert!(matches!(stop(), Err(EngineError::Cancelled)));\n}";
        let diags = run(&[
            ("crates/core/src/error.rs", ENUM),
            ("crates/core/src/query.rs", lib),
            ("tests/errors.rs", test),
        ]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn dead_variant_is_flagged() {
        let lib = "use crate::error::{EngineError, Result};\npub fn find(n: &str) -> Result<u32> {\n    Err(EngineError::UnknownColumn(n.into()))\n}";
        let test = "#[test]\nfn t() { matches!(x, EngineError::UnknownColumn(_)); let c = EngineError::Cancelled; }";
        let diags = run(&[
            ("crates/core/src/error.rs", ENUM),
            ("crates/core/src/query.rs", lib),
            ("tests/errors.rs", test),
        ]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].msg.contains("Cancelled"), "{diags:?}");
        assert!(diags[0].msg.contains("no construction site"), "{diags:?}");
        assert!(diags[0].path.ends_with("error.rs"));
    }

    #[test]
    fn untested_variant_is_flagged() {
        let lib = "use crate::error::{EngineError, Result};\npub fn find(n: &str) -> Result<u32> {\n    Err(EngineError::UnknownColumn(n.into()))\n}\npub fn stop() -> Result<()> {\n    Err(EngineError::Cancelled)\n}";
        let test = "#[test]\nfn t() { let _e = EngineError::Cancelled; }";
        let diags = run(&[
            ("crates/core/src/error.rs", ENUM),
            ("crates/core/src/query.rs", lib),
            ("tests/errors.rs", test),
        ]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].msg.contains("UnknownColumn"), "{diags:?}");
        assert!(diags[0].msg.contains("never appears in a test"), "{diags:?}");
    }

    #[test]
    fn display_match_arms_are_not_construction_sites() {
        let display = "use crate::error::{EngineError, Result};\nimpl fmt::Display for EngineError {\n    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {\n        match self {\n            EngineError::UnknownColumn(c) => write!(f, \"{c}\"),\n            EngineError::Cancelled => write!(f, \"cancelled\"),\n        }\n    }\n}";
        let test = "#[test]\nfn t() { let _ = (EngineError::Cancelled, EngineError::UnknownColumn(String::new())); }";
        let diags = run(&[
            ("crates/core/src/error.rs", ENUM),
            ("crates/core/src/display.rs", display),
            ("tests/errors.rs", test),
        ]);
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(diags.iter().all(|d| d.msg.contains("no construction site")), "{diags:?}");
    }

    #[test]
    fn let_underscore_discard_is_flagged() {
        let lib = "use crate::error::{EngineError, Result};\npub fn stop() -> Result<()> { Err(EngineError::Cancelled) }\npub fn caller() {\n    let _ = stop();\n}";
        let test = "#[test]\nfn t() { let _e = (EngineError::Cancelled, EngineError::UnknownColumn(String::new())); let _x = find(); }";
        let lib2 = "use crate::error::{EngineError, Result};\npub fn find() -> Result<u32> { Err(EngineError::UnknownColumn(String::new())) }";
        let diags = run(&[
            ("crates/core/src/error.rs", ENUM),
            ("crates/core/src/query.rs", lib),
            ("crates/core/src/expr.rs", lib2),
            ("tests/errors.rs", test),
        ]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].msg.contains("let _ ="), "{diags:?}");
    }

    #[test]
    fn ok_discard_is_flagged_but_foreign_ok_is_not() {
        let lib = "use crate::error::{EngineError, Result};\npub fn stop() -> Result<()> { Err(EngineError::Cancelled) }\npub fn caller(v: &[u32]) -> Option<usize> {\n    stop().ok();\n    v.binary_search(&3).ok()\n}";
        let test = "#[test]\nfn t() { let _e = (EngineError::Cancelled, EngineError::UnknownColumn(String::new())); }";
        let lib2 = "use crate::error::{EngineError, Result};\npub fn find() -> Result<u32> { Err(EngineError::UnknownColumn(String::new())) }";
        let diags = run(&[
            ("crates/core/src/error.rs", ENUM),
            ("crates/core/src/query.rs", lib),
            ("crates/core/src/expr.rs", lib2),
            ("tests/errors.rs", test),
        ]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].msg.contains(".ok()"), "{diags:?}");
        assert_eq!(diags[0].line, 4, "{diags:?}");
    }

    #[test]
    fn two_argument_results_need_engine_error_in_tail() {
        let lib = "pub fn plain() -> Result<u32, String> { Err(String::new()) }\npub fn caller() {\n    let _ = plain();\n}";
        let diags = run(&[("crates/toolbox/src/misc.rs", lib)]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn discards_in_tests_are_exempt() {
        let lib = "use crate::error::{EngineError, Result};\npub fn stop() -> Result<()> { Err(EngineError::Cancelled) }\npub fn find(n: &str) -> Result<u32> { Err(EngineError::UnknownColumn(n.into())) }\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        let _ = super::stop();\n        let _e = (EngineError::Cancelled, EngineError::UnknownColumn(String::new()));\n    }\n}";
        let diags = run(&[("crates/core/src/error.rs", ENUM), ("crates/core/src/query.rs", lib)]);
        assert!(diags.is_empty(), "{diags:?}");
    }
}
