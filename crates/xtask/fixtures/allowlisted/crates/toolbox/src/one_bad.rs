//! Fixture: one uncommented unsafe block, suppressed by the allowlist.

pub fn first(data: &[u32]) -> u32 {
    unsafe { *data.get_unchecked(0) }
}
