//! Fixture: one known finding, suppressed by the committed baseline.

pub fn first(values: &[i64]) -> i64 {
    *values.first().unwrap()
}
