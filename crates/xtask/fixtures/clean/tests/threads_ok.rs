//! Fixture: integration tests may spawn ad-hoc threads to stress
//! concurrency invariants.

#[test]
fn hammer() {
    let h = std::thread::spawn(|| 1 + 1);
    assert_eq!(h.join().unwrap(), 2);
}
