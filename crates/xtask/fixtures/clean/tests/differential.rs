//! Fixture differential test: exercises the dispatcher at every available
//! tier and compares against the scalar oracle.

fn differential_sum() {
    for level in SimdLevel::available() {
        assert_eq!(sum(&[1, 2, 3], level), sum_scalar(&[1, 2, 3]));
    }
}
