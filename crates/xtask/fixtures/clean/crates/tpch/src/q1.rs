//! Clean fixture: a driver crate depending downward on the engine, which
//! the layer-conformance pass accepts.

use bipie_core::scan::Scan;

pub fn inspect(s: &Scan) -> usize {
    s.width()
}
