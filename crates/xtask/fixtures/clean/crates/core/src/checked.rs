//! Fixture: panic sites pinned with `// PANIC:` justifications; panics in
//! test modules need no pin.

pub fn head(values: &[i64]) -> i64 {
    // PANIC: callers guarantee a non-empty slice.
    *values.first().unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v: Option<u8> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
