//! Fixture: sanctioned atomics with per-site ordering justifications, and
//! a fully annotated fork-join lock protocol.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

pub struct Counter {
    runs: AtomicUsize,
}

impl Counter {
    pub fn bump(&self) -> usize {
        // ORDERING: Relaxed — a statistics counter with no dependent reads.
        self.runs.fetch_add(1, Ordering::Relaxed)
    }

    pub fn snapshot(&self) -> usize {
        self.runs.load(Ordering::Relaxed) // ORDERING: racy statistics read
    }
}

pub struct JoinState {
    // LOCK: leaf — guards only the outstanding-worker count; held briefly
    // at completion and across the `done` wait in `join`.
    pending: Mutex<usize>,
    // LOCK: waited on exclusively with the `pending` guard.
    done: Condvar,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // LOCK: acquisition helper; call sites document guard lifetimes.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl JoinState {
    pub fn join(&self) {
        // LOCK: `pending` held across the wait; it is the only live guard.
        let mut pending = lock(&self.pending);
        while *pending > 0 {
            // LOCK: consumes and returns the `pending` guard.
            pending = self.done.wait(pending).unwrap_or_else(PoisonError::into_inner);
        }
        drop(pending);
    }

    pub fn finish(&self) {
        // LOCK: leaf decrement; signals `done` at zero, dropped right after.
        let mut pending = lock(&self.pending);
        *pending -= 1;
        if *pending == 0 {
            self.done.notify_all();
        }
        drop(pending);
    }
}
