//! Fixture: sanctioned atomics with per-site ordering justifications.

use std::sync::atomic::{AtomicUsize, Ordering};

pub struct Counter {
    runs: AtomicUsize,
}

impl Counter {
    pub fn bump(&self) -> usize {
        // ORDERING: Relaxed — a statistics counter with no dependent reads.
        self.runs.fetch_add(1, Ordering::Relaxed)
    }

    pub fn snapshot(&self) -> usize {
        self.runs.load(Ordering::Relaxed) // ORDERING: racy statistics read
    }
}
