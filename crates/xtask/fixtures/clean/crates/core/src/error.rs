//! Clean fixture: every error variant is constructed in library code and
//! exercised by a test.

pub enum EngineError {
    Saturated,
}

pub type Result<T> = std::result::Result<T, EngineError>;

pub fn bump(v: u32) -> Result<u32> {
    if v == u32::MAX {
        return Err(EngineError::Saturated);
    }
    Ok(v + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturated_path() {
        assert!(matches!(bump(u32::MAX), Err(EngineError::Saturated)));
        assert!(matches!(bump(1), Ok(2)));
    }
}
