//! Clean fixture: an engine boundary fn that publishes every error exit —
//! the early validation `?` publishes through `inspect_err`, and the tail
//! `Err` is dominated by a publication.

pub fn execute(q: &Query) -> Result<Output, EngineError> {
    q.validate().inspect_err(|e| telemetry().publish_error(e))?;
    match run(q) {
        Ok(out) => Ok(out),
        Err(e) => {
            telemetry().publish_error(&e);
            Err(e)
        }
    }
}
