//! Fixture: the telemetry seam itself — registry construction and counter
//! mutation are sanctioned here (and only here within core).

pub fn publish(registry: &Registry) {
    let queries = Registry::counter(registry);
    Counter::inc(&queries);
}
