//! Clean fixture: an accounted module that allocates *and* charges the
//! allocation through the governor's accountant, so the accountant pass
//! stays quiet.

pub struct MemScope {
    avail: usize,
}

impl MemScope {
    pub fn charge(&mut self, bytes: usize) -> Result<(), ()> {
        self.avail = self.avail.checked_sub(bytes).ok_or(())?;
        Ok(())
    }
}

pub fn budgeted_scan(mem: &mut MemScope, rows: usize) -> Result<Vec<u32>, ()> {
    mem.charge(rows * 4)?;
    Ok(vec![0u32; rows])
}
