//! Clean fixture: an accounted module that allocates *and* charges the
//! allocation through the governor's accountant, so the accountant pass
//! stays quiet.

pub struct MemScope {
    avail: usize,
}

impl MemScope {
    pub fn charge(&mut self, bytes: usize) -> Result<(), ()> {
        self.avail = self.avail.checked_sub(bytes).ok_or(())?;
        Ok(())
    }
}

pub fn budgeted_scan(mem: &mut MemScope, rows: usize) -> Result<Vec<u32>, ()> {
    mem.charge(rows * 4)?;
    Ok(vec![0u32; rows])
}

pub fn governed_worker(sched: &Sched, governor: &Governor) -> Result<u64, EngineError> {
    let mut total = 0;
    let mut last = None;
    while let Some(claim) = sched.claim(0, 2, &mut last) {
        if governor.active() {
            governor.check()?;
        }
        total += claim.range.len as u64;
    }
    Ok(total)
}

pub fn balanced_span(tracer: &mut Tracer, rows: u64) -> Result<(), EngineError> {
    let t = tracer.start();
    let outcome = fallible_work(rows);
    tracer.span(Phase::Selection, SpanLoc::none(), rows, t);
    outcome?;
    Ok(())
}

pub fn paired_decision(tracer: &mut Tracer, stats: &mut ExecStats, s: Strategy) {
    stats.record_selection(s);
    if tracer.enabled() {
        tracer.decision_selection(s);
    }
}
