//! Fixture: engine code records time through the Tracer API (where the
//! ProfileLevel::Off gate lives) — no raw counter reads, no hand-built
//! events. Tests at the bottom may read cycles directly.

pub fn process(tracer: &mut Tracer, rows: u64) {
    let start = tracer.start();
    let _ = rows;
    tracer.span(Phase::Selection, SpanLoc::none(), rows, start);
}

#[cfg(test)]
mod tests {
    #[test]
    fn timing_in_tests_is_fine() {
        let _ = bipie_toolbox::cycles::read_tsc();
    }
}
