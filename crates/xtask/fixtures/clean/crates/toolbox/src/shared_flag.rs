//! Clean fixture: a sync-carrying struct outside the sync modules whose
//! sharing protocol is documented, which the sync-escape pass accepts.

use std::cell::UnsafeCell;

/// One-shot handoff slot.
///
/// Invariant: exactly one writer stores before publishing the struct to a
/// reader; after publication the cell is only ever read, so the
/// `UnsafeCell` is never aliased mutably across threads.
pub struct HandoffFlag {
    slot: UnsafeCell<u64>,
}

impl HandoffFlag {
    pub fn slot_addr(&self) -> *const u64 {
        self.slot.get()
    }
}
