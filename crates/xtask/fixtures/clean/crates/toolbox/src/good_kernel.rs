//! Fixture: a fully conforming kernel file (must pass every audit pass).

pub fn sum(values: &[u32], level: u8) -> u64 {
    if has_avx2(level) {
        // SAFETY: has_avx2 verified the CPU supports AVX2.
        return unsafe { avx2::sum(values) };
    }
    sum_scalar(values)
}

pub fn sum_scalar(values: &[u32]) -> u64 {
    values.iter().map(|&v| u64::from(v)).sum()
}

fn has_avx2(level: u8) -> bool {
    level > 0
}

mod avx2 {
    /// # Safety
    /// The CPU must support avx2 — guaranteed by the dispatcher's
    /// `SimdLevel` check before any call.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn sum(values: &[u32]) -> u64 {
        super::sum_scalar(values)
    }
}
