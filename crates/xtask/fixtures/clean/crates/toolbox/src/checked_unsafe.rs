//! Clean fixture: the `// SAFETY:` contract names `ptr_aligned()` and a
//! dominating `debug_assert!` actually validates it before the unsafe
//! block.

pub fn ptr_aligned(p: *const u8) -> bool {
    (p as usize) % 64 == 0
}

pub fn read_wide(p: *const u8) -> u8 {
    debug_assert!(ptr_aligned(p));
    // SAFETY: 64-byte alignment established by ptr_aligned().
    unsafe { *p }
}
