//! Fixture: a scan hot path mutating process metrics directly instead of
//! publishing once per query through the core::telemetry seam.

pub fn per_batch_metrics() {
    let rows = Counter::default();
    rows.inc();
    let reg = Registry::new();
    let _ = reg;
}
