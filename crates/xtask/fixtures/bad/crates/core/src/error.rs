//! Fixture: an error enum with a variant nobody constructs or tests.

pub enum EngineError {
    Used(String),
    Dead,
}

pub type Result<T> = std::result::Result<T, EngineError>;
