//! Fixture: engine results discarded in library code.

use crate::error::{EngineError, Result};

pub fn fallible() -> Result<u32> {
    Err(EngineError::Used("boom".into()))
}

pub fn swallowed_by_let() {
    let _ = fallible();
}

pub fn swallowed_by_ok() -> Option<u32> {
    fallible().ok()
}
