//! Bad fixture: an engine boundary fn (`execute`) whose early validation
//! error propagates via `?` without touching the telemetry publication
//! seam — the error counters never see this exit.

pub fn execute(q: &Query) -> Result<Output, EngineError> {
    q.validate()?;
    Ok(run(q))
}
