//! Fixture: atomics in a sanctioned module, but the memory-ordering
//! argument has no adjacent `// ORDERING:` justification.

use std::sync::atomic::{AtomicUsize, Ordering};

pub struct Flag {
    hits: AtomicUsize,
}

impl Flag {
    pub fn bump(&self) -> usize {
        self.hits.fetch_add(1, Ordering::Relaxed)
    }
}
