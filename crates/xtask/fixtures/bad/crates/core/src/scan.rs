//! Bad fixture: an accounted module (`crates/core/src/scan.rs`) that
//! allocates data-dependent buffers but no longer references the memory
//! accountant anywhere — the accountant pass must flag each allocation.

pub fn unbudgeted_scan(rows: usize) -> Vec<u32> {
    let mut gids = vec![0u32; rows];
    let mut scratch = Vec::with_capacity(rows);
    scratch.resize(rows, 0u8);
    gids[0] = scratch[0] as u32;
    gids
}

pub fn ungoverned_worker(sched: &Sched) -> u64 {
    let mut total = 0;
    let mut last = None;
    while let Some(claim) = sched.claim(0, 2, &mut last) {
        total += claim.range.len as u64;
    }
    total
}

pub fn leaky_span(tracer: &mut Tracer, rows: u64) -> Result<(), EngineError> {
    let t = tracer.start();
    fallible_work(rows)?;
    tracer.span(Phase::Selection, SpanLoc::none(), rows, t);
    Ok(())
}

pub fn unpaired_decision(tracer: &mut Tracer, s: Strategy) {
    tracer.decision_selection(s);
}
