//! Bad fixture: an accounted module (`crates/core/src/scan.rs`) that
//! allocates data-dependent buffers but no longer references the memory
//! accountant anywhere — the accountant pass must flag each allocation.

pub fn unbudgeted_scan(rows: usize) -> Vec<u32> {
    let mut gids = vec![0u32; rows];
    let mut scratch = Vec::with_capacity(rows);
    scratch.resize(rows, 0u8);
    gids[0] = scratch[0] as u32;
    gids
}
