//! Fixture: unpinned panic sites in library code.

pub fn first(values: &[i64]) -> i64 {
    *values.first().unwrap()
}

pub fn must(flag: bool) {
    if !flag {
        panic!("flag must be set");
    }
}
