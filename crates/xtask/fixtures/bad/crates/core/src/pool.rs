//! Fixture: lock-discipline violations — an unannotated lock field and
//! acquisition site, a guard held across a `Condvar::wait`, and two fns
//! acquiring the same pair of locks in opposite orders.

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

pub struct Shared {
    queue: Mutex<Vec<u32>>,
    // LOCK: waited on with the `queue` guard.
    work: Condvar,
    // LOCK: leaf — guards only the counter.
    count: Mutex<usize>,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // LOCK: acquisition helper; call sites document guard lifetimes.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

pub fn unannotated(s: &Shared) {
    let q = lock(&s.queue);
    drop(q);
}

pub fn held_across_wait(s: &Shared) {
    // LOCK: counter held much too long.
    let c = lock(&s.count);
    // LOCK: park until work arrives.
    let mut q = lock(&s.queue);
    q = s.work.wait(q).unwrap_or_else(PoisonError::into_inner);
    drop(q);
    drop(c);
}

pub fn order_a(s: &Shared) {
    // LOCK: queue first…
    let q = lock(&s.queue);
    // LOCK: …then count.
    let c = lock(&s.count);
    drop(c);
    drop(q);
}

pub fn order_b(s: &Shared) {
    // LOCK: count first…
    let c = lock(&s.count);
    // LOCK: …then queue — reversed relative to `order_a`.
    let q = lock(&s.queue);
    drop(q);
    drop(c);
}
