//! Fixture: engine code timing batches and building trace events by hand,
//! bypassing the Tracer's ProfileLevel::Off gate.

pub fn timed_batch(rows: u64) -> u64 {
    let start = bipie_toolbox::cycles::read_tsc();
    let _ = rows;
    bipie_toolbox::cycles::read_tsc() - start
}

pub fn hand_rolled_event(rows: u64, cycles: u64) {
    let _event = TraceEvent::Span { phase, worker: 0, loc, rows, cycles, wall_nanos: 0 };
}
