//! Fixture: a sync-carrying struct outside the sync modules with no
//! documented invariant, a `pub` sync field, and a hand-written auto-trait
//! promise.

use std::cell::UnsafeCell;

pub struct Leaky {
    pub slot: UnsafeCell<u64>,
}

// SAFETY: fixture — this assertion is exactly what the audit must flag.
unsafe impl Sync for Leaky {}
