//! Fixture: a toolbox module reaching up into the engine crate.

use bipie_core::scan::Scan;

pub fn peek(_s: &Scan) {}
