//! Fixture: production code spawning threads outside the worker pool.

pub fn fan_out(parts: Vec<Vec<u64>>) -> u64 {
    std::thread::scope(|s| {
        let handles: Vec<_> =
            parts.iter().map(|p| s.spawn(move || p.iter().sum::<u64>())).collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    })
}

pub fn fire_and_forget() {
    std::thread::spawn(|| {});
}
