//! Fixture: unsafe without SAFETY comments (must fail the unsafe audit).

pub fn first(data: &[u32]) -> u32 {
    unsafe { *data.get_unchecked(0) }
}

pub unsafe fn no_contract(ptr: *const u32) -> u32 {
    unsafe { *ptr }
}
