//! Fixture: tier module declared but the dispatcher never routes into it.

pub fn double(values: &[u32], out: &mut [u32]) {
    double_scalar(values, out);
}

pub fn double_scalar(values: &[u32], out: &mut [u32]) {
    for (o, &v) in out.iter_mut().zip(values) {
        *o = v * 2;
    }
}

mod avx2 {
    /// # Safety
    /// The CPU must support AVX2; the dispatcher checks before calling.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn double(values: &[u32], out: &mut [u32]) {
        for (o, &v) in out.iter_mut().zip(values) {
            *o = v * 2;
        }
    }
}
