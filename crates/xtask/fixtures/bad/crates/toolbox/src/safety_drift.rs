//! Bad fixture: a `// SAFETY:` contract that names a checkable
//! precondition (`ptr_aligned()`, defined right here) which no path
//! actually validates before the unsafe block.

pub fn ptr_aligned(p: *const u8) -> bool {
    (p as usize) % 64 == 0
}

pub fn read_wide(p: *const u8) -> u8 {
    // SAFETY: 64-byte alignment established by ptr_aligned().
    unsafe { *p }
}
