//! Fixture: AVX2 kernel with no scalar sibling (must fail kernel-contract).

pub fn widen_sum(values: &[u8], level: u8) -> u64 {
    if has_avx2(level) {
        // SAFETY: caller verified AVX2 support at this level.
        return unsafe { avx2::widen_sum(values) };
    }
    values.iter().map(|&v| u64::from(v)).sum()
}

fn has_avx2(level: u8) -> bool {
    level > 0
}

mod avx2 {
    /// # Safety
    /// The CPU must support AVX2; the dispatcher checks before calling.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn widen_sum(values: &[u8]) -> u64 {
        values.iter().map(|&v| u64::from(v)).sum()
    }
}
