//! Fixture: atomic state outside the sanctioned concurrency modules.

use std::sync::atomic::{AtomicBool, Ordering};

pub static STOP: AtomicBool = AtomicBool::new(false);

pub fn stop() {
    STOP.store(true, Ordering::SeqCst);
}
