//! Fixture: selection-vector consumer without instrumentation.

pub fn count_selected(sel: &[u8]) -> usize {
    sel.iter().filter(|&&b| b != 0).count()
}
