//! Fixture test: mentions `Used` so only `Dead` is untested.

#[test]
fn used_is_exercised() {
    let e = EngineError::Used("x".into());
    drop(e);
}
