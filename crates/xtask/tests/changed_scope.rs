//! Tests for the `--changed` scoping machinery: module-parent expansion,
//! diagnostic filtering, and the git file enumeration it is fed from.

use std::path::PathBuf;

use xtask::{changed_files, module_parents, scope_to_changed, Diag};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().unwrap()
}

fn diag(pass: &'static str, path: &str, line: usize) -> Diag {
    Diag { path: path.to_string(), line, pass, msg: format!("finding in {path}") }
}

#[test]
fn module_parents_of_a_crate_source_file() {
    assert_eq!(
        module_parents("crates/core/src/scan.rs"),
        vec!["crates/core/src/lib.rs".to_string(), "crates/core/src/main.rs".to_string()],
    );
}

#[test]
fn module_parents_of_a_nested_module_file() {
    assert_eq!(
        module_parents("crates/core/src/agg/sum.rs"),
        vec![
            "crates/core/src/agg/mod.rs".to_string(),
            "crates/core/src/lib.rs".to_string(),
            "crates/core/src/main.rs".to_string(),
        ],
    );
}

#[test]
fn module_parents_never_include_the_file_itself() {
    assert_eq!(
        module_parents("crates/core/src/lib.rs"),
        vec!["crates/core/src/main.rs".to_string()],
    );
}

#[test]
fn module_parents_of_paths_outside_src_are_empty() {
    assert!(module_parents("README.md").is_empty());
    assert!(module_parents("docs/DESIGN.md").is_empty());
    assert!(module_parents("crates/xtask/audit-allowlist.txt").is_empty());
}

#[test]
fn scope_keeps_changed_files_and_their_parents_only() {
    let diags = vec![
        diag("spans", "crates/core/src/scan.rs", 10),
        diag("layers", "crates/core/src/lib.rs", 3),
        diag("telemetry", "crates/core/src/engine.rs", 7),
        diag("unsafe", "crates/toolbox/src/cmp.rs", 1),
    ];
    let scoped = scope_to_changed(diags, &["crates/core/src/scan.rs".to_string()]);
    let paths: Vec<&str> = scoped.iter().map(|d| d.path.as_str()).collect();
    assert_eq!(paths, ["crates/core/src/scan.rs", "crates/core/src/lib.rs"]);
}

#[test]
fn scope_drops_allowlist_and_baseline_bookkeeping() {
    let diags = vec![
        diag("allowlist", "crates/xtask/audit-allowlist.txt", 1),
        diag("baseline", "crates/xtask/audit-baseline.json", 1),
        diag("spans", "crates/core/src/scan.rs", 10),
    ];
    let scoped = scope_to_changed(
        diags,
        &[
            "crates/xtask/audit-allowlist.txt".to_string(),
            "crates/xtask/audit-baseline.json".to_string(),
            "crates/core/src/scan.rs".to_string(),
        ],
    );
    assert_eq!(scoped.len(), 1, "{scoped:?}");
    assert_eq!(scoped[0].pass, "spans");
}

#[test]
fn empty_change_set_scopes_everything_out() {
    let diags = vec![diag("spans", "crates/core/src/scan.rs", 10)];
    assert!(scope_to_changed(diags, &[]).is_empty());
}

#[test]
fn scoped_bad_fixture_audit_reports_only_changed_file_findings() {
    let fixture = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures/bad");
    let outcome = xtask::run_audit_timed(&fixture, &xtask::ALL_PASSES);
    let scoped = scope_to_changed(outcome.diags, &["crates/core/src/scan.rs".to_string()]);
    assert!(!scoped.is_empty(), "bad fixture must flag scan.rs");
    assert!(scoped.iter().all(|d| d.path.starts_with("crates/core/src/")), "{scoped:?}");
    assert!(
        scoped.iter().any(|d| d.pass == "checkpoint-reachability"),
        "scoping must keep the changed file's own findings: {scoped:?}"
    );
    assert!(
        !scoped.iter().any(|d| d.path.contains("toolbox")),
        "unchanged crates must be scoped out: {scoped:?}"
    );
}

#[test]
fn changed_files_enumerates_the_working_tree_of_this_repo() {
    // The repo this test runs in is a git checkout; the call must succeed
    // (the list itself depends on local working-tree state).
    let files = changed_files(&repo_root()).expect("git must run in the workspace");
    assert!(files.iter().all(|f| !f.is_empty()));
}

#[test]
fn changed_files_fails_cleanly_outside_a_git_checkout() {
    let dir = std::env::temp_dir().join("xtask-changed-no-git");
    std::fs::create_dir_all(&dir).unwrap();
    let err = changed_files(&dir).expect_err("bare temp dir is not a checkout");
    assert!(err.contains("git"), "{err}");
}
