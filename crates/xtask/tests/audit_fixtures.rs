//! End-to-end audit tests: the fixture trees under `fixtures/` are shaped
//! like miniature workspaces; the bad ones must produce the expected
//! `path:line` diagnostics and the clean one (plus the real repo) must
//! audit clean.

use std::path::{Path, PathBuf};

const ALL: [&str; 17] = xtask::ALL_PASSES;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures").join(name)
}

fn rendered(root: &Path) -> Vec<String> {
    xtask::run_audit(root, &ALL).iter().map(|d| d.to_string()).collect()
}

#[test]
fn bad_fixture_uncommented_unsafe() {
    let diags = rendered(&fixture("bad"));
    let text = diags.join("\n");
    assert!(
        text.contains("uncommented_unsafe.rs:4: [unsafe-audit] unsafe block without"),
        "{text}"
    );
    assert!(text.contains("uncommented_unsafe.rs:7: [unsafe-audit] unsafe fn without"), "{text}");
    assert!(
        text.contains("uncommented_unsafe.rs:8: [unsafe-audit] unsafe block without"),
        "{text}"
    );
}

#[test]
fn bad_fixture_kernel_without_oracle() {
    let text = rendered(&fixture("bad")).join("\n");
    assert!(
        text.contains(
            "kernel_no_oracle.rs:19: [kernel-contract] kernel `widen_sum` has no scalar sibling"
        ),
        "{text}"
    );
}

#[test]
fn bad_fixture_unwired_tier() {
    let text = rendered(&fixture("bad")).join("\n");
    assert!(
        text.contains("unwired_tier.rs:13: [kernel-contract] tier module `avx2` is declared but never dispatched"),
        "{text}"
    );
    // The kernel itself has an oracle, so only the wiring is flagged.
    assert!(!text.contains("kernel `double` has no scalar sibling"), "{text}");
}

#[test]
fn bad_fixture_missing_invariants() {
    let text = rendered(&fixture("bad")).join("\n");
    assert!(
        text.contains("missing_invariants.rs:3: [invariants] `count_selected` consumes a selection byte vector"),
        "{text}"
    );
}

#[test]
fn bad_fixture_adhoc_threads() {
    let text = rendered(&fixture("bad")).join("\n");
    assert!(text.contains("adhoc_thread.rs:4: [thread-hygiene] `thread::scope` outside"), "{text}");
    assert!(
        text.contains("adhoc_thread.rs:12: [thread-hygiene] `thread::spawn` outside"),
        "{text}"
    );
}

#[test]
fn bad_fixture_raw_trace() {
    let text = rendered(&fixture("bad")).join("\n");
    assert!(text.contains("raw_trace.rs:5: [trace-hygiene] `read_tsc` outside"), "{text}");
    assert!(text.contains("raw_trace.rs:7: [trace-hygiene] `read_tsc` outside"), "{text}");
    assert!(text.contains("raw_trace.rs:11: [trace-hygiene] `TraceEvent::` outside"), "{text}");
}

#[test]
fn bad_fixture_registry_outside_seam() {
    let text = rendered(&fixture("bad")).join("\n");
    assert!(
        text.contains(
            "hot_metrics.rs:5: [trace-hygiene] `Counter::` outside the core::telemetry seam"
        ),
        "{text}"
    );
    assert!(text.contains("hot_metrics.rs:7: [trace-hygiene] `Registry::` outside"), "{text}");
}

#[test]
fn bad_fixture_unaccounted_allocations() {
    let text = rendered(&fixture("bad")).join("\n");
    assert!(text.contains("crates/core/src/scan.rs:6: [accountant] `vec![`"), "{text}");
    assert!(text.contains("crates/core/src/scan.rs:7: [accountant] `with_capacity(`"), "{text}");
    assert!(text.contains("crates/core/src/scan.rs:8: [accountant] `.resize(`"), "{text}");
}

#[test]
fn bad_fixture_unjustified_ordering() {
    let text = rendered(&fixture("bad")).join("\n");
    assert!(
        text.contains(
            "governor.rs:12: [atomics-discipline] `Ordering::Relaxed` without an adjacent"
        ),
        "{text}"
    );
}

#[test]
fn bad_fixture_stray_atomic() {
    let text = rendered(&fixture("bad")).join("\n");
    assert!(
        text.contains("stray_atomic.rs:5: [atomics-discipline] `AtomicBool` outside"),
        "{text}"
    );
    assert!(
        text.contains("stray_atomic.rs:8: [atomics-discipline] `Ordering::SeqCst` outside"),
        "{text}"
    );
}

#[test]
fn bad_fixture_unpinned_panics() {
    let text = rendered(&fixture("bad")).join("\n");
    assert!(text.contains("panicky.rs:4: [panic-freedom] `.unwrap()` in library code"), "{text}");
    assert!(text.contains("panicky.rs:9: [panic-freedom] `panic!` in library code"), "{text}");
}

#[test]
fn bad_fixture_dispatch_matrix() {
    let text = rendered(&fixture("bad")).join("\n");
    // Unwired cell: the avx2 kernel exists but nothing routes into it.
    assert!(
        text.contains(
            "unwired_tier.rs:17: [dispatch-matrix] dispatch cell `double` (double × avx2) \
             is never referenced outside its tier module"
        ),
        "{text}"
    );
    // Oracle-less cell: wired, but no scalar sibling to check against.
    assert!(
        text.contains(
            "kernel_no_oracle.rs:19: [dispatch-matrix] dispatch cell `widen_sum` \
             (widen_sum × avx2) maps to no scalar oracle"
        ),
        "{text}"
    );
    // Unexercised cell: no equivalence test sweeps SimdLevel::available().
    assert!(text.contains("is not exercised by the equivalence-test matrix"), "{text}");
}

#[test]
fn bad_fixture_lock_discipline() {
    let text = rendered(&fixture("bad")).join("\n");
    assert!(
        text.contains("pool.rs:8: [lock-discipline] lock field `queue` without an adjacent"),
        "{text}"
    );
    assert!(
        text.contains("pool.rs:21: [lock-discipline] guard acquisition without an adjacent"),
        "{text}"
    );
    assert!(
        text.contains("pool.rs:30: [lock-discipline] guard on `count` held across `Condvar::wait`"),
        "{text}"
    );
    assert!(
        text.contains("[lock-discipline] lock-order cycle `count -> queue -> count`"),
        "{text}"
    );
    // Annotated sites in the same file are not flagged.
    assert!(!text.contains("pool.rs:27:"), "{text}");
}

#[test]
fn bad_fixture_sync_escape() {
    let text = rendered(&fixture("bad")).join("\n");
    assert!(
        text.contains(
            "sync_leak.rs:7: [sync-escape] struct `Leaky` owns synchronization state outside"
        ),
        "{text}"
    );
    assert!(text.contains("sync_leak.rs:8: [sync-escape] `pub` sync field `Leaky.slot`"), "{text}");
    assert!(text.contains("sync_leak.rs:12: [sync-escape] `unsafe impl Sync`"), "{text}");
}

#[test]
fn bad_fixture_error_surface() {
    let text = rendered(&fixture("bad")).join("\n");
    assert!(
        text.contains(
            "error.rs:5: [error-surface] variant `EngineError::Dead` has no construction site"
        ),
        "{text}"
    );
    assert!(
        text.contains(
            "error.rs:5: [error-surface] variant `EngineError::Dead` never appears in a test"
        ),
        "{text}"
    );
    assert!(
        text.contains("swallow.rs:10: [error-surface] engine `Result` discarded via `let _ = …`"),
        "{text}"
    );
    assert!(
        text.contains("swallow.rs:14: [error-surface] engine `Result` discarded via `.ok()`"),
        "{text}"
    );
    // `Used` is constructed in the library and mentioned in a test, so only
    // `Dead` is flagged.
    assert!(!text.contains("`EngineError::Used`"), "{text}");
}

#[test]
fn bad_fixture_layer_conformance() {
    let text = rendered(&fixture("bad")).join("\n");
    assert!(
        text.contains("upward.rs:3: [layer-conformance] crate `toolbox` must not depend on `core`"),
        "{text}"
    );
}

#[test]
fn bad_fixture_checkpoint_reachability() {
    let text = rendered(&fixture("bad")).join("\n");
    assert!(
        text.contains(
            "crates/core/src/scan.rs:16: [checkpoint-reachability] governed loop in \
             `ungoverned_worker`"
        ),
        "{text}"
    );
    assert!(text.contains("re-iterates without reaching a `Governor` checkpoint"), "{text}");
}

#[test]
fn bad_fixture_span_balance() {
    let text = rendered(&fixture("bad")).join("\n");
    assert!(
        text.contains(
            "crates/core/src/scan.rs:23: [span-balance] profiler span `t` opened in `leaky_span` \
             is not closed on every path"
        ),
        "{text}"
    );
    // The other span opens in the fixture tree are balanced.
    assert_eq!(text.matches("[span-balance]").count(), 1, "{text}");
}

#[test]
fn bad_fixture_telemetry_accounting() {
    let text = rendered(&fixture("bad")).join("\n");
    // Unpublished `?` exit from a boundary fn.
    assert!(
        text.contains(
            "crates/core/src/engine.rs:6: [telemetry-accounting] `?` propagates the error out \
             of boundary fn `execute`"
        ),
        "{text}"
    );
    // Decision-log increment with no paired ExecStats increment.
    assert!(
        text.contains(
            "crates/core/src/scan.rs:30: [telemetry-accounting] `decision_selection` logged in \
             `unpaired_decision` with no `record_selection`"
        ),
        "{text}"
    );
}

#[test]
fn bad_fixture_safety_precondition_flow() {
    let text = rendered(&fixture("bad")).join("\n");
    assert!(
        text.contains(
            "crates/toolbox/src/safety_drift.rs:11: [safety-precondition-flow] `// SAFETY:` \
             names checkable precondition `ptr_aligned()`"
        ),
        "{text}"
    );
    // The clean twin (fixtures/clean) validates with a dominating
    // debug_assert and must stay quiet — covered by clean_fixture_audits_clean.
}

#[test]
fn dataflow_rule_ids_round_trip_through_sarif() {
    let diags = xtask::run_audit(&fixture("bad"), &["checkpoints", "spans", "telemetry", "safety"]);
    let passes: std::collections::BTreeSet<&str> = diags.iter().map(|d| d.pass).collect();
    let rules = [
        "checkpoint-reachability",
        "span-balance",
        "telemetry-accounting",
        "safety-precondition-flow",
    ];
    for rule in rules {
        assert!(passes.contains(rule), "{rule} missing from bad-fixture findings: {passes:?}");
    }
    let ids = xtask::report::stable_ids(&diags);
    let sarif = xtask::report::to_sarif(&diags);
    for rule in rules {
        assert!(sarif.contains(&format!("{{ \"id\": \"{rule}\" }}")), "{sarif}");
    }
    for id in &ids {
        assert!(sarif.contains(id.as_str()), "{id} missing from SARIF:\n{sarif}");
    }
    assert_eq!(xtask::report::parse_baseline(&xtask::report::render_baseline(&ids)), ids);
}

#[test]
fn new_rule_ids_round_trip_through_sarif() {
    let diags = xtask::run_audit(&fixture("bad"), &["locks", "sync", "errors", "layers"]);
    let passes: std::collections::BTreeSet<&str> = diags.iter().map(|d| d.pass).collect();
    for rule in ["lock-discipline", "sync-escape", "error-surface", "layer-conformance"] {
        assert!(passes.contains(rule), "{rule} missing from bad-fixture findings: {passes:?}");
    }
    let ids = xtask::report::stable_ids(&diags);
    let sarif = xtask::report::to_sarif(&diags);
    for rule in ["lock-discipline", "sync-escape", "error-surface", "layer-conformance"] {
        assert!(sarif.contains(&format!("{{ \"id\": \"{rule}\" }}")), "{sarif}");
    }
    for id in &ids {
        assert!(sarif.contains(id.as_str()), "{id} missing from SARIF:\n{sarif}");
    }
    assert_eq!(xtask::report::parse_baseline(&xtask::report::render_baseline(&ids)), ids);
}

#[test]
fn baseline_suppresses_and_reports_stale_entries() {
    let diags = xtask::run_audit(&fixture("baselined"), &ALL);
    // The live finding is suppressed; only the stale entry surfaces.
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].pass, "baseline");
    assert!(diags[0].msg.contains("stale entry"), "{}", diags[0]);
    assert!(diags[0].msg.contains("panic-freedom-0000000000000000"), "{}", diags[0]);
}

#[test]
fn baseline_ids_match_sarif_fingerprints() {
    // The IDs a regenerated baseline carries are the ones the SARIF export
    // publishes, and render → parse round-trips them exactly.
    let diags = xtask::run_audit(&fixture("bad"), &["panics"]);
    assert!(!diags.is_empty(), "the bad fixture must have panic findings");
    let ids = xtask::report::stable_ids(&diags);
    let sarif = xtask::report::to_sarif(&diags);
    for id in &ids {
        assert!(sarif.contains(id.as_str()), "{id} missing from SARIF:\n{sarif}");
    }
    assert_eq!(xtask::report::parse_baseline(&xtask::report::render_baseline(&ids)), ids);
}

#[test]
fn clean_fixture_audits_clean() {
    let diags = rendered(&fixture("clean"));
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn allowlist_suppresses_and_reports_stale_entries() {
    let diags = xtask::run_audit(&fixture("allowlisted"), &ALL);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].pass, "allowlist");
    assert!(diags[0].msg.contains("stale entry"), "{}", diags[0]);
}

#[test]
fn real_tree_cfg_lowering_coverage_is_at_least_95_percent() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().unwrap();
    let corpus = xtask::Corpus::load(&root);
    let (total, clean) =
        corpus.files.iter().fold((0, 0), |(t, c), f| (t + f.cfgs.fn_total, c + f.cfgs.fn_clean));
    assert!(total > 100, "the workspace should have many fns, saw {total}");
    assert!(
        clean * 100 >= total * 95,
        "CFG lowering must stay ≥95% fallback-free: {clean}/{total} clean"
    );
}

#[test]
fn real_workspace_audits_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().unwrap();
    let diags = rendered(&root);
    assert!(diags.is_empty(), "the workspace must stay audit-clean:\n{}", diags.join("\n"));
}
