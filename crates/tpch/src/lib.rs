//! # TPC-H substrate for BIPie
//!
//! The paper's end-to-end evaluation (§6.3) runs TPC-H Query 1 against the
//! `LINEITEM` table. This crate provides:
//!
//! * [`lineitem`] — a deterministic, seeded generator of the `LINEITEM`
//!   columns Q1 touches, following the TPC-H specification's value
//!   distributions (quantity 1–50; prices derived per part; discount
//!   0.00–0.10; tax 0.00–0.08; ship/receipt dates derived from order dates;
//!   return flags and line statuses derived from the date columns). Rows
//!   are generated in `l_orderkey` order, matching the paper's setup
//!   ("we sort and shard LINEITEM table on l_orderkey ... so we do not take
//!   advantage in any way of the order of rows").
//! * [`q1`] — Query 1 expressed against the BIPie engine (fixed-point cents
//!   arithmetic; `1 - l_discount` becomes `100 - discount_cents` with scale
//!   tracking), plus result formatting and a row-at-a-time reference for
//!   validation.
//!
//! Money values are fixed-point cents (`Decimal`); products of decimals
//! carry their combined scale (4 for `disc_price`, 6 for `charge`), exactly
//! like SQL `DECIMAL` arithmetic.

#![forbid(unsafe_code)]

pub mod lineitem;
pub mod q1;

pub use lineitem::{generate_lineitem, lineitem_specs, LineItemGen};
pub use q1::{format_q1, q1_cutoff, q1_query, q1_rows, run_q1, run_q1_result, Q1Row};
