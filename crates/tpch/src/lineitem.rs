//! Deterministic `LINEITEM` generator.
//!
//! Follows the TPC-H 3.0 specification for the columns Query 1 reads.
//! `dbgen` itself is proprietary-ish C; this generator reproduces the same
//! *distributions* with a seeded PRNG so datasets are reproducible across
//! runs and machines, which is what the cycles/row evaluation needs (§6.3's
//! substitution is documented in DESIGN.md).

use bipie_columnstore::{ColumnSpec, Date, LogicalType, Table, TableBuilder, Value};
use bipie_toolbox::rng::Rng;

/// Rows per unit scale factor (TPC-H: ~6M lineitem rows at SF 1).
pub const ROWS_PER_SF: f64 = 6_000_000.0;

/// Configuration for the generator.
#[derive(Debug, Clone)]
pub struct LineItemGen {
    /// TPC-H scale factor (SF 1 ≈ 6M rows).
    pub scale_factor: f64,
    /// PRNG seed (fixed default for reproducibility).
    pub seed: u64,
    /// Rows per immutable segment.
    pub segment_rows: usize,
}

impl Default for LineItemGen {
    fn default() -> Self {
        LineItemGen { scale_factor: 0.01, seed: 0xB1B1E, segment_rows: 1 << 20 }
    }
}

/// Schema of the generated table (the Q1-relevant columns plus the sort
/// key).
pub fn lineitem_specs() -> Vec<ColumnSpec> {
    vec![
        ColumnSpec::new("l_orderkey", LogicalType::I64),
        ColumnSpec::new("l_quantity", LogicalType::I64),
        ColumnSpec::new("l_extendedprice", LogicalType::Decimal),
        ColumnSpec::new("l_discount", LogicalType::Decimal),
        ColumnSpec::new("l_tax", LogicalType::Decimal),
        ColumnSpec::new("l_returnflag", LogicalType::Str),
        ColumnSpec::new("l_linestatus", LogicalType::Str),
        ColumnSpec::new("l_shipdate", LogicalType::Date),
    ]
}

impl LineItemGen {
    /// Convenience constructor.
    pub fn new(scale_factor: f64) -> LineItemGen {
        LineItemGen { scale_factor, ..Default::default() }
    }

    /// Total rows this configuration generates.
    pub fn num_rows(&self) -> usize {
        (ROWS_PER_SF * self.scale_factor).round() as usize
    }

    /// Generate the table.
    pub fn generate(&self) -> Table {
        let mut rng = Rng::seed_from_u64(self.seed);
        let mut builder = TableBuilder::with_segment_rows(lineitem_specs(), self.segment_rows);

        // TPC-H date anchors.
        let startdate = Date::from_ymd(1992, 1, 1).days(); // O_ORDERDATE min
        let enddate = Date::from_ymd(1998, 8, 2).days(); // O_ORDERDATE max
        let currentdate = Date::from_ymd(1995, 6, 17).days();

        let total = self.num_rows();
        let mut generated = 0usize;
        let mut orderkey = 0i64;
        while generated < total {
            // Orders carry 1..=7 lineitems (uniform), per the spec.
            orderkey += 1;
            let lines = rng.random_range(1..=7usize).min(total - generated);
            let orderdate = rng.random_range(startdate..=enddate);
            for _ in 0..lines {
                let quantity = rng.random_range(1..=50i64);
                // P_RETAILPRICE is 90000..=200000 cents across parts; the
                // extended price is quantity * unit price (cents).
                let unit_price = rng.random_range(90_000..=200_000i64);
                let extendedprice = quantity * unit_price;
                let discount = rng.random_range(0..=10i64); // 0.00..0.10
                let tax = rng.random_range(0..=8i64); // 0.00..0.08
                let shipdate = orderdate + rng.random_range(1..=121i32);
                let receiptdate = shipdate + rng.random_range(1..=30i32);
                let returnflag = if receiptdate <= currentdate {
                    if rng.random_bool(0.5) {
                        "R"
                    } else {
                        "A"
                    }
                } else {
                    "N"
                };
                let linestatus = if shipdate > currentdate { "O" } else { "F" };
                builder.push_row(vec![
                    Value::I64(orderkey),
                    Value::I64(quantity),
                    Value::Decimal(extendedprice),
                    Value::Decimal(discount),
                    Value::Decimal(tax),
                    Value::Str(returnflag.into()),
                    Value::Str(linestatus.into()),
                    Value::Date(Date(shipdate)),
                ]);
                generated += 1;
            }
        }
        builder.finish()
    }
}

/// Generate `LINEITEM` at the given scale factor with default seed.
pub fn generate_lineitem(scale_factor: f64, segment_rows: usize) -> Table {
    LineItemGen { scale_factor, segment_rows, ..Default::default() }.generate()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_sized() {
        let g = LineItemGen { scale_factor: 0.001, ..Default::default() };
        let a = g.generate();
        let b = g.generate();
        assert_eq!(a.num_rows(), 6000);
        assert_eq!(b.num_rows(), 6000);
        // Determinism: spot-check a decoded column.
        let qa = a.segments()[0].column(1).get_i64(123);
        let qb = b.segments()[0].column(1).get_i64(123);
        assert_eq!(qa, qb);
    }

    #[test]
    fn value_domains_match_spec() {
        let t = LineItemGen { scale_factor: 0.002, ..Default::default() }.generate();
        let seg = &t.segments()[0];
        // quantity in [1, 50]
        let m = seg.meta(1);
        assert!(m.min >= 1 && m.max <= 50);
        // discount in [0, 10] cents-of-percent
        let m = seg.meta(3);
        assert!(m.min >= 0 && m.max <= 10);
        // tax in [0, 8]
        let m = seg.meta(4);
        assert!(m.min >= 0 && m.max <= 8);
        // returnflag dictionary = {A, N, R}; linestatus = {F, O}
        match seg.column(5) {
            bipie_columnstore::encoding::EncodedColumn::StrDict(d) => {
                assert_eq!(d.dict(), &["A", "N", "R"]);
            }
            _ => panic!("returnflag should be dictionary encoded"),
        }
        match seg.column(6) {
            bipie_columnstore::encoding::EncodedColumn::StrDict(d) => {
                assert_eq!(d.dict(), &["F", "O"]);
            }
            _ => panic!("linestatus should be dictionary encoded"),
        }
        // shipdate within the generatable window.
        let m = seg.meta(7);
        assert!(m.min >= Date::from_ymd(1992, 1, 2).days() as i64);
        assert!(m.max <= Date::from_ymd(1998, 12, 1).days() as i64);
    }

    #[test]
    fn segmentation_respected() {
        let t = generate_lineitem(0.002, 5000);
        assert_eq!(t.num_rows(), 12_000);
        assert!(t.segments().len() >= 2);
        assert!(t.segments().iter().all(|s| s.num_rows() <= 5000));
    }
}
