//! TPC-H Query 1 on the BIPie engine (§6.3).
//!
//! ```sql
//! SELECT l_returnflag, l_linestatus,
//!        sum(l_quantity), sum(l_extendedprice),
//!        sum(l_extendedprice * (1 - l_discount)),
//!        sum(l_extendedprice * (1 - l_discount) * (1 + l_tax)),
//!        avg(l_quantity), avg(l_extendedprice), avg(l_discount), count(*)
//! FROM lineitem
//! WHERE l_shipdate <= date '1998-12-01' - interval '90' day
//! GROUP BY l_returnflag, l_linestatus
//! ORDER BY l_returnflag, l_linestatus;
//! ```
//!
//! Decimal arithmetic happens in scaled integers: `1 - l_discount` becomes
//! `100 - discount_hundredths`, so `disc_price` carries scale 4 and
//! `charge` scale 6; the result formatter divides the sums back to decimal.
//! The execution path mirrors the paper's description: the range filter
//! compares encoded dates with SIMD, the two dictionary-encoded group
//! columns combine into group ids 0..6 (metadata admits 6 groups even
//! though 4 appear), the special group is the 7th, and the engine picks
//! in-register counting plus multi-aggregate sums at runtime.

use bipie_columnstore::{Date, Table, Value};
use bipie_core::{
    execute, AggExpr, EngineError, ExecStats, Expr, Predicate, Query, QueryBuilder, QueryOptions,
    QueryResult,
};

/// The Q1 filter cutoff: `DATE '1998-12-01' - INTERVAL '90' DAY`.
pub fn q1_cutoff() -> Date {
    Date::from_ymd(1998, 12, 1).plus_days(-90)
}

/// Build the Q1 query specification.
pub fn q1_query(options: QueryOptions) -> Query {
    let extprice = || Expr::col("l_extendedprice");
    // (1 - l_discount) at scale 2 => (100 - discount_hundredths).
    let one_minus_disc = || Expr::lit(100).sub(Expr::col("l_discount"));
    // (1 + l_tax) at scale 2 => (100 + tax_hundredths).
    let one_plus_tax = || Expr::lit(100).add(Expr::col("l_tax"));

    let mut builder = QueryBuilder::new()
        .filter(Predicate::le("l_shipdate", Value::Date(q1_cutoff())))
        .group_by("l_returnflag")
        .group_by("l_linestatus")
        .aggregate(AggExpr::sum("l_quantity"))
        .aggregate(AggExpr::sum("l_extendedprice"))
        .aggregate(AggExpr::sum_expr(extprice().mul(one_minus_disc())))
        .aggregate(AggExpr::sum_expr(extprice().mul(one_minus_disc()).mul(one_plus_tax())))
        .aggregate(AggExpr::avg("l_quantity"))
        .aggregate(AggExpr::avg("l_extendedprice"))
        .aggregate(AggExpr::avg("l_discount"))
        .aggregate(AggExpr::count_star());
    builder = builder.options(options);
    builder.build()
}

/// One formatted Q1 result row.
#[derive(Debug, Clone, PartialEq)]
pub struct Q1Row {
    /// `l_returnflag` value.
    pub returnflag: String,
    /// `l_linestatus` value.
    pub linestatus: String,
    /// `sum(l_quantity)`.
    pub sum_qty: i64,
    /// `sum(l_extendedprice)` in dollars.
    pub sum_base_price: f64,
    /// `sum(l_extendedprice * (1 - l_discount))` in dollars.
    pub sum_disc_price: f64,
    /// `sum(l_extendedprice * (1 - l_discount) * (1 + l_tax))` in dollars.
    pub sum_charge: f64,
    /// `avg(l_quantity)`.
    pub avg_qty: f64,
    /// `avg(l_extendedprice)` in dollars.
    pub avg_price: f64,
    /// `avg(l_discount)` as a fraction.
    pub avg_disc: f64,
    /// `count(*)`.
    pub count_order: u64,
}

/// Run Q1 and return the raw engine result (stats *and* profile — use this
/// with `QueryOptions::profile` set to render `EXPLAIN ANALYZE`); see
/// [`q1_rows`] for the decimal conversion.
pub fn run_q1_result(table: &Table, options: QueryOptions) -> Result<QueryResult, EngineError> {
    execute(table, &q1_query(options))
}

/// Run Q1 and convert scaled-integer sums to decimal values.
pub fn run_q1(
    table: &Table,
    options: QueryOptions,
) -> Result<(Vec<Q1Row>, ExecStats), EngineError> {
    let result = run_q1_result(table, options)?;
    Ok((q1_rows(&result), result.stats))
}

/// Convert a raw Q1 [`QueryResult`] into decimal [`Q1Row`]s.
pub fn q1_rows(result: &QueryResult) -> Vec<Q1Row> {
    result
        .rows
        .iter()
        .map(|r| {
            let key_str = |i: usize| match &r.keys[i] {
                Value::Str(s) => s.as_ref().to_owned(),
                other => other.to_string(),
            };
            Q1Row {
                returnflag: key_str(0),
                linestatus: key_str(1),
                sum_qty: r.aggs[0].as_sum().expect("sum"),
                // scale 2 -> dollars
                sum_base_price: r.aggs[1].as_sum().expect("sum") as f64 / 100.0,
                // scale 4 -> dollars
                sum_disc_price: r.aggs[2].as_sum().expect("sum") as f64 / 10_000.0,
                // scale 6 -> dollars
                sum_charge: r.aggs[3].as_sum().expect("sum") as f64 / 1_000_000.0,
                avg_qty: r.aggs[4].as_f64(),
                avg_price: r.aggs[5].as_f64() / 100.0,
                avg_disc: r.aggs[6].as_f64() / 100.0,
                count_order: r.aggs[7].as_count().expect("count"),
            }
        })
        .collect()
}

/// Render Q1 rows the way the TPC-H answer set prints them.
pub fn format_q1(rows: &[Q1Row]) -> String {
    let mut out = String::from(
        "l_returnflag | l_linestatus | sum_qty | sum_base_price | sum_disc_price | sum_charge | avg_qty | avg_price | avg_disc | count_order\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{} | {} | {} | {:.2} | {:.4} | {:.6} | {:.2} | {:.2} | {:.2} | {}\n",
            r.returnflag,
            r.linestatus,
            r.sum_qty,
            r.sum_base_price,
            r.sum_disc_price,
            r.sum_charge,
            r.avg_qty,
            r.avg_price,
            r.avg_disc,
            r.count_order
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lineitem::LineItemGen;
    use bipie_core::reference::execute_reference;
    use bipie_core::{AggStrategy, SelectionStrategy};

    fn small_table() -> Table {
        LineItemGen { scale_factor: 0.005, segment_rows: 10_000, ..Default::default() }.generate()
    }

    #[test]
    fn q1_matches_reference_executor() {
        let t = small_table();
        let q = q1_query(QueryOptions::default());
        let fast = execute(&t, &q).unwrap();
        let slow = execute_reference(&t, &q).unwrap();
        assert_eq!(fast.rows.len(), 4, "Q1 outputs four groups");
        assert_eq!(fast.rows, slow.rows);
    }

    #[test]
    fn q1_shapes_and_selectivity() {
        let t = small_table();
        let (rows, stats) = run_q1(&t, QueryOptions::default()).unwrap();
        assert_eq!(rows.len(), 4);
        // Groups come back ordered: (A,F), (N,F), (N,O), (R,F).
        let keys: Vec<(String, String)> =
            rows.iter().map(|r| (r.returnflag.clone(), r.linestatus.clone())).collect();
        assert_eq!(
            keys,
            vec![
                ("A".into(), "F".into()),
                ("N".into(), "F".into()),
                ("N".into(), "O".into()),
                ("R".into(), "F".into()),
            ]
        );
        // ~98% of rows pass the filter (paper: "selecting 98% of the rows").
        let selected: u64 = rows.iter().map(|r| r.count_order).sum();
        let fraction = selected as f64 / t.num_rows() as f64;
        assert!((0.95..1.0).contains(&fraction), "selectivity {fraction}");
        // Near-full selectivity should drive special-group selection.
        assert!(stats.selection_count(SelectionStrategy::SpecialGroup) > 0, "stats: {stats:?}");
        // Aggregate invariants.
        for r in &rows {
            assert!(r.sum_disc_price < r.sum_base_price, "discount reduces price");
            assert!(r.sum_charge > r.sum_disc_price, "tax increases charge");
            assert!((0.0..=0.10).contains(&r.avg_disc));
            assert!((1.0..=50.0).contains(&r.avg_qty));
            let expected_avg = r.sum_base_price / r.count_order as f64;
            assert!((r.avg_price - expected_avg).abs() / expected_avg < 1e-9);
        }
    }

    #[test]
    fn q1_identical_across_forced_strategies() {
        let t = small_table();
        let baseline = run_q1(&t, QueryOptions::default()).unwrap().0;
        for agg in AggStrategy::ALL {
            for sel in SelectionStrategy::ALL {
                let opts = QueryOptions {
                    forced_agg: Some(agg),
                    forced_selection: Some(sel),
                    ..Default::default()
                };
                let rows = run_q1(&t, opts).unwrap().0;
                assert_eq!(rows, baseline, "{agg:?}+{sel:?}");
            }
        }
    }

    #[test]
    fn q1_plans_five_distinct_sums() {
        // AVG(qty)/AVG(price) dedupe into SUM slots and AVG(discount) adds
        // one more: five distinct sum expressions, which is exactly what
        // fits the 32-byte multi-aggregate row (§6.3: "All five calculated
        // sums can be updated for a single row in one load-add-store").
        let t = LineItemGen { scale_factor: 0.001, ..Default::default() }.generate();
        let (_, stats) = run_q1(&t, QueryOptions::default()).unwrap();
        assert_eq!(stats.agg_count(AggStrategy::MultiAggregate), stats.segments_scanned);
    }

    #[test]
    fn format_is_stable() {
        let rows = vec![Q1Row {
            returnflag: "A".into(),
            linestatus: "F".into(),
            sum_qty: 100,
            sum_base_price: 1234.5,
            sum_disc_price: 1200.25,
            sum_charge: 1250.125,
            avg_qty: 25.5,
            avg_price: 300.125,
            avg_disc: 0.05,
            count_order: 4,
        }];
        let s = format_q1(&rows);
        assert!(s.contains("A | F | 100 | 1234.50 | 1200.2500 | 1250.125000 | 25.50"));
    }
}
