//! The Aggregate Processor (§3).
//!
//! "The Aggregate Processor takes in a group id vector and a selection
//! vector produced by the Filter component, and computes the aggregates for
//! each group. The Aggregate Processor chooses among the many aggregation
//! strategies implemented in the vector toolbox at run time."
//!
//! [`SegmentAggExecutor`] holds one segment's accumulators and executes a
//! (selection strategy × aggregation strategy) pairing per batch:
//!
//! * **selection** turns the selection byte vector into compacted inputs
//!   (gather / compact), or fuses it into the group-id map (special group);
//! * **aggregation** runs the scalar, sort-based, in-register, or
//!   multi-aggregate kernels over the surviving rows.
//!
//! Accumulation happens in the encoding's *normalized* domain: a bit-packed
//! input column contributes `Σ (value - reference)`, and [`finish`]
//! re-adds `reference × count` per group — the trick that lets every kernel
//! operate on narrow unsigned values while sums stay exact.
//!
//! One extra accumulator slot (index `num_groups`) always exists for the
//! special group; it is simply unused by the other selection strategies.
//!
//! [`finish`]: SegmentAggExecutor::finish

use bipie_columnstore::encoding::{ForBitPackColumn, RleColumn};
use bipie_columnstore::Segment;
use bipie_toolbox::agg::multi::RowLayout;
use bipie_toolbox::agg::sort_based::{bucket_sort, SortedBatch};
use bipie_toolbox::agg::{in_register, minmax, multi, scalar, sort_based, ColRef};
use bipie_toolbox::bitpack::WordSize;
use bipie_toolbox::runspan::{enc_minmax_runs_spans, enc_sum_runs_spans};
use bipie_toolbox::select::{compact, gather, special_group};
use bipie_toolbox::selvec::SelIndexVec;
use bipie_toolbox::{RunSpanVec, SimdLevel};

use crate::expr::ResolvedExpr;
use crate::strategy::{AggStrategy, SelectionStrategy};

/// One aggregate input, planned per segment.
#[derive(Debug)]
pub enum AggInput<'a> {
    /// A raw bit-packed stored column: kernels consume normalized values
    /// directly; `finish` applies the frame-of-reference correction.
    Packed(&'a ForBitPackColumn),
    /// An expression (or a non-bit-packed stored column): evaluated per
    /// batch over decoded column vectors, as `i64`.
    Computed(ResolvedExpr),
}

impl AggInput<'_> {
    /// Normalized input width in bytes (8 for computed expressions).
    pub fn width_bytes(&self) -> usize {
        match self {
            AggInput::Packed(c) => WordSize::for_bits(c.bits()).bytes(),
            AggInput::Computed(_) => 8,
        }
    }

    /// True if sort-based SIMD gather summation applies (§5.2: raw packed,
    /// narrow enough for the 32-bit gather).
    pub fn sortable_packed(&self) -> bool {
        matches!(self, AggInput::Packed(c) if c.bits() <= 25)
    }
}

/// Reusable per-batch value storage for one input.
#[derive(Debug, Default)]
enum ValueBuf {
    #[default]
    Empty,
    U8(Vec<u8>),
    U16(Vec<u16>),
    U32(Vec<u32>),
    U64(Vec<u64>),
    I64(Vec<i64>),
}

impl ValueBuf {
    fn col_ref(&self) -> ColRef<'_> {
        match self {
            ValueBuf::U8(v) => ColRef::U8(v),
            ValueBuf::U16(v) => ColRef::U16(v),
            ValueBuf::U32(v) => ColRef::U32(v),
            ValueBuf::U64(v) => ColRef::U64(v),
            // i64 values reinterpret as u64: two's complement summation is
            // exact given the planner's overflow proof.
            ValueBuf::I64(v) => ColRef::U64(as_u64_slice(v)),
            ValueBuf::Empty => ColRef::U64(&[]),
        }
    }
}

/// Reinterpret an `i64` slice as `u64` (same layout; sums are exact in
/// two's complement).
fn as_u64_slice(v: &[i64]) -> &[u64] {
    // SAFETY: i64 and u64 have identical size and alignment.
    unsafe { std::slice::from_raw_parts(v.as_ptr() as *const u64, v.len()) }
}

/// Scratch buffers reused across batches.
#[derive(Debug, Default)]
struct Scratch {
    /// Selection index vector (batch-local row ids).
    iv: SelIndexVec,
    /// Absolute row ids (`start + iv`), for gathers into segment columns.
    abs_iv: Vec<u32>,
    /// Selected group ids.
    gids_sel: Vec<u8>,
    /// Decoded column cache for expression evaluation: `(col, values)`.
    col_cache: Vec<(usize, Vec<i64>)>,
    /// Expression results (full batch).
    expr_bufs: Vec<Vec<i64>>,
    /// Bucket-sorted batch (sort-based strategy).
    sorted: SortedBatch,
    /// Temporary sums for the multi-aggregate kernel.
    multi_sums: Vec<i64>,
    /// Compaction staging for i64 expression results.
    compact_i64: Vec<u64>,
    /// Expression-evaluator stack buffers.
    expr_scratch: crate::expr::ExprScratch,
}

/// Per-segment aggregate executor.
#[derive(Debug)]
pub struct SegmentAggExecutor<'a> {
    level: SimdLevel,
    strategy: AggStrategy,
    /// Real group count G; slot G is the special group.
    num_groups: usize,
    inputs: Vec<AggInput<'a>>,
    /// MIN/MAX inputs (extension beyond the paper's COUNT/SUM).
    mm_inputs: Vec<AggInput<'a>>,
    /// Per-group row counts, length G+1.
    counts: Vec<u64>,
    /// Normalized sums, layout `[input][G+1]`.
    sums: Vec<i64>,
    /// Width-typed min/max accumulators, one per MIN/MAX input.
    mm_accs: Vec<MinMaxAcc>,
    /// Per-input batch value buffers (sums, then MIN/MAX inputs).
    bufs: Vec<ValueBuf>,
    scratch: Scratch,
}

/// Final per-segment aggregation output (logical domain).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentAggResult {
    /// Selected-row count per real group, length G.
    pub counts: Vec<u64>,
    /// Logical sums, layout `[input][G]`.
    pub sums: Vec<Vec<i64>>,
    /// Logical minima per MIN/MAX input, layout `[mm_input][G]`
    /// (identity `i64::MAX` for empty groups — callers drop count-0 groups).
    pub mins: Vec<Vec<i64>>,
    /// Logical maxima per MIN/MAX input (identity `i64::MIN` when empty).
    pub maxs: Vec<Vec<i64>>,
}

/// Width-typed min/max accumulators for one MIN/MAX input. Packed inputs
/// accumulate in the normalized unsigned domain (min/max commute with the
/// frame-of-reference shift); computed inputs in logical `i64`.
#[derive(Debug)]
enum MinMaxAcc {
    U8(Vec<u8>, Vec<u8>),
    U16(Vec<u16>, Vec<u16>),
    U32(Vec<u32>, Vec<u32>),
    U64(Vec<u64>, Vec<u64>),
    I64(Vec<i64>, Vec<i64>),
}

impl MinMaxAcc {
    fn new_for(input: &AggInput<'_>, slots: usize) -> MinMaxAcc {
        match input {
            AggInput::Packed(c) => match bipie_toolbox::bitpack::WordSize::for_bits(c.bits()) {
                bipie_toolbox::bitpack::WordSize::W1 => {
                    MinMaxAcc::U8(vec![u8::MAX; slots], vec![u8::MIN; slots])
                }
                bipie_toolbox::bitpack::WordSize::W2 => {
                    MinMaxAcc::U16(vec![u16::MAX; slots], vec![u16::MIN; slots])
                }
                bipie_toolbox::bitpack::WordSize::W4 => {
                    MinMaxAcc::U32(vec![u32::MAX; slots], vec![u32::MIN; slots])
                }
                bipie_toolbox::bitpack::WordSize::W8 => {
                    MinMaxAcc::U64(vec![u64::MAX; slots], vec![u64::MIN; slots])
                }
            },
            AggInput::Computed(_) => MinMaxAcc::I64(vec![i64::MAX; slots], vec![i64::MIN; slots]),
        }
    }

    /// Logical (min, max) of group `g`, shifted back by the frame of
    /// reference for packed inputs.
    fn logical(&self, g: usize, reference: i64) -> (i64, i64) {
        match self {
            MinMaxAcc::U8(mins, maxs) => {
                if mins[g] == u8::MAX && maxs[g] == u8::MIN {
                    (i64::MAX, i64::MIN)
                } else {
                    (mins[g] as i64 + reference, maxs[g] as i64 + reference)
                }
            }
            MinMaxAcc::U16(mins, maxs) => {
                if mins[g] == u16::MAX && maxs[g] == u16::MIN {
                    (i64::MAX, i64::MIN)
                } else {
                    (mins[g] as i64 + reference, maxs[g] as i64 + reference)
                }
            }
            MinMaxAcc::U32(mins, maxs) => {
                if mins[g] == u32::MAX && maxs[g] == u32::MIN {
                    (i64::MAX, i64::MIN)
                } else {
                    (mins[g] as i64 + reference, maxs[g] as i64 + reference)
                }
            }
            MinMaxAcc::U64(mins, maxs) => {
                if mins[g] == u64::MAX && maxs[g] == u64::MIN {
                    (i64::MAX, i64::MIN)
                } else {
                    (
                        (mins[g] as i128 + reference as i128) as i64,
                        (maxs[g] as i128 + reference as i128) as i64,
                    )
                }
            }
            MinMaxAcc::I64(mins, maxs) => (mins[g], maxs[g]),
        }
    }
}

impl<'a> SegmentAggExecutor<'a> {
    /// Create an executor for `num_groups` real groups with the chosen
    /// aggregation strategy.
    pub fn new(
        strategy: AggStrategy,
        num_groups: usize,
        inputs: Vec<AggInput<'a>>,
        level: SimdLevel,
    ) -> Self {
        Self::with_min_max(strategy, num_groups, inputs, Vec::new(), level)
    }

    /// Create an executor that additionally tracks per-group MIN/MAX over
    /// `mm_inputs`.
    pub fn with_min_max(
        strategy: AggStrategy,
        num_groups: usize,
        inputs: Vec<AggInput<'a>>,
        mm_inputs: Vec<AggInput<'a>>,
        level: SimdLevel,
    ) -> Self {
        assert!((1..=255).contains(&num_groups), "narrow path supports 1..=255 groups");
        let slots = num_groups + 1;
        let sums = vec![0i64; inputs.len() * slots];
        let mm_accs = mm_inputs.iter().map(|i| MinMaxAcc::new_for(i, slots)).collect();
        let mut bufs = Vec::with_capacity(inputs.len() + mm_inputs.len());
        bufs.resize_with(inputs.len() + mm_inputs.len(), ValueBuf::default);
        SegmentAggExecutor {
            level,
            strategy,
            num_groups,
            inputs,
            mm_inputs,
            counts: vec![0u64; slots],
            sums,
            mm_accs,
            bufs,
            scratch: Scratch::default(),
        }
    }

    /// The aggregation strategy in use.
    pub fn strategy(&self) -> AggStrategy {
        self.strategy
    }

    /// Projected working-set bytes for an executor of this shape: per-group
    /// accumulators (counts, sums, width-typed min/max pairs), per-input
    /// batch value buffers, the selection scratch every strategy shares,
    /// and the strategy's own staging. A deliberate estimate (vector
    /// headers and allocator slop are ignored) — the scan charges it to the
    /// memory accountant *before* construction, so a budget violation
    /// surfaces as a typed error instead of an allocation, and the
    /// budget-aware strategy chooser ranks candidates with it.
    pub fn projected_bytes(
        strategy: AggStrategy,
        num_groups: usize,
        inputs: &[AggInput<'_>],
        mm_inputs: &[AggInput<'_>],
        batch_rows: usize,
    ) -> usize {
        let slots = num_groups + 1;
        // counts (u64) + normalized sums (i64 per input).
        let mut bytes = slots * 8 + inputs.len() * slots * 8;
        // Width-typed min/max accumulator pairs.
        for i in mm_inputs {
            bytes += 2 * slots * i.width_bytes().max(1);
        }
        // Per-input batch value buffers.
        for i in inputs.iter().chain(mm_inputs) {
            bytes += batch_rows * i.width_bytes().max(1);
        }
        // Selection scratch: index vector (u32), absolute row ids (u32),
        // selected group ids (u8), compaction staging (u64).
        bytes += batch_rows * (4 + 4 + 1 + 8);
        bytes += match strategy {
            AggStrategy::Scalar | AggStrategy::InRegister => 0,
            // Bucket-sorted batch staging: group-major row ids + values.
            AggStrategy::SortBased => batch_rows * 16,
            // Row-layout accumulators (≤ 32 bytes/group) + transposed sums.
            AggStrategy::MultiAggregate => slots * 32 + inputs.len() * slots * 8,
            // Run-wise runs in [`RunWiseExec`], whose accumulators are a
            // handful of scalars; nothing beyond what is counted above.
            AggStrategy::RunWise => 0,
        };
        bytes
    }

    /// Process one batch.
    ///
    /// * `gids` — the batch's group ids from the Group ID Mapper (length
    ///   `len`); mutated in place by special-group selection.
    /// * `sel` — canonical selection byte vector with deleted rows merged,
    ///   or `None` when no filter applies (every row selected).
    /// * `selection` — this batch's selection strategy (ignored when `sel`
    ///   is `None`).
    pub fn process_batch(
        &mut self,
        seg: &Segment,
        start: usize,
        len: usize,
        gids: &mut [u8],
        sel: Option<&[u8]>,
        selection: SelectionStrategy,
    ) {
        debug_assert_eq!(gids.len(), len);
        let level = self.level;
        let slots = self.num_groups + 1;

        // Expression inputs always evaluate over the full batch (the
        // generated-code contract of §3: expressions run on decoded data);
        // selection is applied to their results.
        self.eval_computed(seg, start, len);

        let mode = match sel {
            None => BatchMode::Full,
            Some(sel) => match selection {
                SelectionStrategy::SpecialGroup => {
                    special_group::assign_special_group_in_place(
                        gids,
                        sel,
                        self.num_groups as u8,
                        level,
                    );
                    BatchMode::Full
                }
                SelectionStrategy::Gather | SelectionStrategy::Compact => {
                    let Scratch { iv, gids_sel, abs_iv, .. } = &mut self.scratch;
                    compact::compact_indices(sel, iv, level);
                    compact::compact_u8(gids, sel, gids_sel, level);
                    if selection == SelectionStrategy::Gather {
                        abs_iv.clear();
                        abs_iv.extend(iv.as_slice().iter().map(|&i| i + start as u32));
                        BatchMode::Selected { physical: false }
                    } else {
                        BatchMode::Selected { physical: true }
                    }
                }
                SelectionStrategy::RunSpan => {
                    // PANIC: run-span selection is consumed by the run-wise
                    // executor ([`RunWiseExec`]); the scan never pairs it
                    // with the generic batch executor.
                    unreachable!("run-span selection has no dense byte mask")
                }
            },
        };

        // Sort-based aggregation consumes raw packed columns / full-batch
        // expression vectors via sorted row indices; the other strategies
        // need materialized (selected) value vectors.
        let num_sums = self.inputs.len();
        let total = num_sums + self.mm_inputs.len();
        if self.strategy == AggStrategy::SortBased {
            // Sort-based sums read raw packed columns; MIN/MAX inputs still
            // materialize (their kernels scan materialized vectors).
            self.materialize_inputs(start, len, sel, &mode, num_sums..total);
            self.process_sort_based(seg, start, len, gids, sel, &mode);
            self.process_min_max(gids, &mode);
            return;
        }

        self.materialize_inputs(start, len, sel, &mode, 0..total);

        let SegmentAggExecutor { inputs, counts, sums, bufs, scratch, strategy, .. } = self;
        let Scratch { gids_sel, multi_sums, expr_bufs, .. } = scratch;
        let gids_eff: &[u8] = match &mode {
            BatchMode::Full => gids,
            BatchMode::Selected { .. } => gids_sel,
        };

        // COUNT(*): in-register when the group domain fits, scalar otherwise.
        if slots <= bipie_toolbox::agg::MAX_GROUPS_IN_REGISTER {
            in_register::count_groups(gids_eff, slots, counts, level);
        } else {
            scalar::count_multi_array::<4>(gids_eff, counts);
        }

        // One ColRef per sum input. Computed inputs in Full mode read
        // their expression buffers directly (ValueBuf::Empty marks that
        // case).
        let cols: Vec<ColRef<'_>> = bufs[..inputs.len()]
            .iter()
            .enumerate()
            .map(|(i, buf)| match buf {
                ValueBuf::Empty => ColRef::U64(as_u64_slice(&expr_bufs[i])),
                other => other.col_ref(),
            })
            .collect();

        match strategy {
            AggStrategy::Scalar => {
                if !cols.is_empty() {
                    scalar::sums_row_at_a_time_unrolled(gids_eff, &cols, slots, sums);
                }
            }
            AggStrategy::InRegister => {
                for (i, col) in cols.iter().enumerate() {
                    let sums = &mut sums[i * slots..(i + 1) * slots];
                    if slots > bipie_toolbox::agg::MAX_GROUPS_IN_REGISTER {
                        // The chooser avoids this; forced-strategy runs
                        // stay correct via the scalar kernel.
                        scalar::sum_single_array(gids_eff, *col, sums);
                        continue;
                    }
                    match col {
                        ColRef::U8(v) => in_register::sum_u8(gids_eff, v, slots, sums, level),
                        ColRef::U16(v) => in_register::sum_u16(gids_eff, v, slots, sums, level),
                        ColRef::U32(v) => {
                            let max = match &inputs[i] {
                                AggInput::Packed(c) => c.normalized_max().min(u32::MAX as u64),
                                AggInput::Computed(_) => u32::MAX as u64,
                            };
                            in_register::sum_u32(gids_eff, v, slots, sums, max as u32, level)
                        }
                        // Wider inputs: the chooser avoids this, but stay
                        // correct via the scalar kernel.
                        other => scalar::sum_single_array(gids_eff, *other, sums),
                    }
                }
            }
            AggStrategy::MultiAggregate => match RowLayout::plan_for(&cols) {
                Some(layout) if !cols.is_empty() => {
                    let tmp = multi_sums;
                    tmp.clear();
                    tmp.resize(cols.len() * slots, 0);
                    multi::sum_multi(gids_eff, &cols, &layout, slots, tmp, level);
                    for (s, t) in sums.iter_mut().zip(tmp.iter()) {
                        *s += t;
                    }
                }
                _ => {
                    if !cols.is_empty() {
                        scalar::sums_row_at_a_time_unrolled(gids_eff, &cols, slots, sums);
                    }
                }
            },
            // PANIC: the SortBased arm returned earlier in this function.
            AggStrategy::SortBased => unreachable!("handled above"),
            // PANIC: run-wise aggregation runs in [`RunWiseExec`]; the
            // generic executor is never constructed with it.
            AggStrategy::RunWise => unreachable!("run-wise uses a dedicated executor"),
        }
        drop(cols);
        self.process_min_max(gids, &mode);
    }

    /// Update the MIN/MAX accumulators from the materialized inputs.
    fn process_min_max(&mut self, gids: &[u8], mode: &BatchMode) {
        if self.mm_inputs.is_empty() {
            return;
        }
        let num_sums = self.inputs.len();
        let slots = self.num_groups + 1;
        let level = self.level;
        let Scratch { gids_sel, expr_bufs, .. } = &mut self.scratch;
        let gids_eff: &[u8] = match mode {
            BatchMode::Full => gids,
            BatchMode::Selected { .. } => gids_sel,
        };
        for (j, acc) in self.mm_accs.iter_mut().enumerate() {
            let buf = &self.bufs[num_sums + j];
            match (buf, acc) {
                (ValueBuf::U8(v), MinMaxAcc::U8(mins, maxs)) => {
                    minmax::min_max_u8(gids_eff, v, slots, mins, maxs, level)
                }
                (ValueBuf::U16(v), MinMaxAcc::U16(mins, maxs)) => {
                    minmax::min_max_scalar_u16(gids_eff, v, mins, maxs)
                }
                (ValueBuf::U32(v), MinMaxAcc::U32(mins, maxs)) => {
                    minmax::min_max_scalar_u32(gids_eff, v, mins, maxs)
                }
                (ValueBuf::U64(v), MinMaxAcc::U64(mins, maxs)) => {
                    minmax::min_max_scalar_u64(gids_eff, v, mins, maxs)
                }
                (ValueBuf::I64(v), MinMaxAcc::I64(mins, maxs)) => {
                    minmax::min_max_scalar_i64(gids_eff, v, mins, maxs)
                }
                (ValueBuf::Empty, MinMaxAcc::I64(mins, maxs)) => {
                    // Computed input in Full mode: read the expression
                    // buffer directly.
                    minmax::min_max_scalar_i64(gids_eff, &expr_bufs[num_sums + j], mins, maxs)
                }
                (buf, acc) => {
                    // PANIC: accumulators are allocated to match the buffer
                    // shapes chosen by `materialize_inputs` for one segment;
                    // both derive from the same plan, so they cannot diverge.
                    unreachable!("mismatched min/max buffer {buf:?} for accumulator {acc:?}")
                }
            }
        }
    }

    /// Finish the segment: apply frame-of-reference corrections and drop
    /// the special-group slot.
    pub fn finish(self) -> SegmentAggResult {
        let slots = self.num_groups + 1;
        let counts: Vec<u64> = self.counts[..self.num_groups].to_vec();
        let sums = self
            .inputs
            .iter()
            .enumerate()
            .map(|(i, input)| {
                let norm = &self.sums[i * slots..i * slots + self.num_groups];
                match input {
                    AggInput::Packed(c) => {
                        let r = c.reference();
                        norm.iter().zip(&counts).map(|(&s, &n)| s + r * n as i64).collect()
                    }
                    AggInput::Computed(_) => norm.to_vec(),
                }
            })
            .collect();
        let mut mins = Vec::with_capacity(self.mm_inputs.len());
        let mut maxs = Vec::with_capacity(self.mm_inputs.len());
        for (input, acc) in self.mm_inputs.iter().zip(&self.mm_accs) {
            let reference = match input {
                AggInput::Packed(c) => c.reference(),
                AggInput::Computed(_) => 0,
            };
            let (mn, mx): (Vec<i64>, Vec<i64>) =
                (0..self.num_groups).map(|g| acc.logical(g, reference)).unzip();
            mins.push(mn);
            maxs.push(mx);
        }
        SegmentAggResult { counts, sums, mins, maxs }
    }

    /// Evaluate computed inputs over the full batch into `scratch.expr_bufs`.
    fn eval_computed(&mut self, seg: &Segment, start: usize, len: usize) {
        // Collect the decoded columns every expression needs.
        let mut needed: Vec<usize> = Vec::new();
        for input in self.inputs.iter().chain(&self.mm_inputs) {
            if let AggInput::Computed(e) = input {
                for c in e.columns() {
                    if !needed.contains(&c) {
                        needed.push(c);
                    }
                }
            }
        }
        let Scratch { col_cache, expr_bufs, expr_scratch, .. } = &mut self.scratch;
        col_cache.retain(|(c, _)| needed.contains(c));
        for &c in &needed {
            if !col_cache.iter().any(|(cc, _)| *cc == c) {
                col_cache.push((c, Vec::new()));
            }
        }
        for (c, buf) in col_cache.iter_mut() {
            // decode overwrites every slot; only adjust the length.
            buf.resize(len, 0);
            seg.column(*c).decode_i64_into(start, buf);
        }
        let col_cache = &*col_cache;
        let lookup = |idx: usize| -> &[i64] {
            col_cache
                .iter()
                .find(|(c, _)| *c == idx)
                .map(|(_, v)| v.as_slice())
                // PANIC: `col_cache` was filled above from the same column
                // list the expressions reference.
                .expect("column decoded")
        };
        let total = self.inputs.len() + self.mm_inputs.len();
        expr_bufs.resize_with(total, Vec::new);
        for (i, input) in self.inputs.iter().chain(&self.mm_inputs).enumerate() {
            if let AggInput::Computed(e) = input {
                // Earlier expression results feed CSE references.
                let (done, rest) = expr_bufs.split_at_mut(i);
                let prev = |p: usize| -> &[i64] { &done[p] };
                e.eval_batch_with_prev(len, &lookup, &prev, &mut rest[0], expr_scratch);
            }
        }
    }

    /// Materialize the (selected) values of inputs with indices in `range`
    /// into `self.bufs` (sum inputs come first, then MIN/MAX inputs).
    fn materialize_inputs(
        &mut self,
        start: usize,
        len: usize,
        sel: Option<&[u8]>,
        mode: &BatchMode,
        range: std::ops::Range<usize>,
    ) {
        let level = self.level;
        let Scratch { abs_iv, expr_bufs, compact_i64, .. } = &mut self.scratch;
        for (i, input) in self.inputs.iter().chain(&self.mm_inputs).enumerate() {
            if !range.contains(&i) {
                continue;
            }
            let buf = &mut self.bufs[i];
            match input {
                AggInput::Packed(c) => {
                    let pv = c.normalized();
                    match mode {
                        BatchMode::Full => {
                            // Unpack the whole batch at the natural width.
                            unpack_full(pv, start, len, buf, level);
                        }
                        BatchMode::Selected { physical: false } => {
                            gather_selected(pv, abs_iv, buf, level);
                        }
                        BatchMode::Selected { physical: true } => {
                            unpack_full(pv, start, len, buf, level);
                            // PANIC: Selected mode always carries a selection.
                            compact_buf(buf, sel.expect("selected mode"), level);
                        }
                    }
                }
                AggInput::Computed(_) => {
                    match mode {
                        BatchMode::Full => {
                            // Kernels read the expression buffer directly
                            // (see `col_refs`); nothing to materialize.
                            *buf = ValueBuf::Empty;
                        }
                        BatchMode::Selected { .. } => {
                            // Compact the full-batch expression results.
                            let values = &expr_bufs[i];
                            let mut v = match std::mem::replace(buf, ValueBuf::Empty) {
                                ValueBuf::I64(v) => v,
                                _ => Vec::new(),
                            };
                            v.clear();
                            compact::compact_u64(
                                as_u64_slice(values),
                                // PANIC: Selected mode always carries a selection.
                                sel.expect("selected mode"),
                                compact_i64,
                                level,
                            );
                            v.extend(compact_i64.iter().map(|&x| x as i64));
                            *buf = ValueBuf::I64(v);
                        }
                    }
                }
            }
        }
    }

    /// Sort-based path (§5.2): bucket-sort once, then gather-sum every
    /// aggregate from its raw representation.
    fn process_sort_based(
        &mut self,
        _seg: &Segment,
        start: usize,
        len: usize,
        gids: &[u8],
        _sel: Option<&[u8]>,
        mode: &BatchMode,
    ) {
        let slots = self.num_groups + 1;
        let level = self.level;
        let Scratch { sorted, gids_sel, iv, expr_bufs, .. } = &mut self.scratch;
        match mode {
            BatchMode::Full => bucket_sort(gids, None, slots, sorted),
            BatchMode::Selected { .. } => bucket_sort(gids_sel, Some(iv.as_slice()), slots, sorted),
        }
        // The sort's counting pass is the COUNT(*) (§5.2).
        for (c, n) in self.counts.iter_mut().zip(sorted.counts()) {
            *c += n;
        }
        for (i, input) in self.inputs.iter().enumerate() {
            let sums = &mut self.sums[i * slots..(i + 1) * slots];
            match input {
                AggInput::Packed(c) => {
                    sort_based::sum_sorted_packed(
                        c.normalized(),
                        sorted,
                        start as u32,
                        sums,
                        level,
                    );
                }
                AggInput::Computed(_) => {
                    // Full-batch expression results, batch-local row ids.
                    let values = &expr_bufs[i];
                    debug_assert_eq!(values.len(), len);
                    sort_based::sum_sorted_i64(values, sorted, sums, level);
                }
            }
        }
    }
}

/// Run-wise aggregation executor (DESIGN.md §13): consumes run-granular
/// selections over RLE inputs for single-group (no GROUP BY) queries,
/// touching O(runs) run headers instead of O(rows) values. RLE stores
/// *logical* run values, so unlike [`SegmentAggExecutor::finish`] no
/// frame-of-reference correction applies.
#[derive(Debug)]
pub struct RunWiseExec<'a> {
    sum_cols: Vec<&'a RleColumn>,
    mm_cols: Vec<&'a RleColumn>,
    count: u64,
    sums: Vec<i64>,
    mins: Vec<i64>,
    maxs: Vec<i64>,
}

impl<'a> RunWiseExec<'a> {
    /// An executor summing `sum_cols` and tracking MIN/MAX over `mm_cols`.
    pub fn new(sum_cols: Vec<&'a RleColumn>, mm_cols: Vec<&'a RleColumn>) -> Self {
        let sums = vec![0i64; sum_cols.len()];
        let mins = vec![i64::MAX; mm_cols.len()];
        let maxs = vec![i64::MIN; mm_cols.len()];
        RunWiseExec { sum_cols, mm_cols, count: 0, sums, mins, maxs }
    }

    /// Consume one batch's run-span selection. `start` is the batch's first
    /// segment row; `spans` are batch-relative.
    pub fn process_spans(&mut self, start: usize, spans: &RunSpanVec) {
        self.count += spans.selected_rows() as u64;
        for (i, c) in self.sum_cols.iter().enumerate() {
            self.sums[i] = self.sums[i].wrapping_add(enc_sum_runs_spans(
                c.run_values(),
                c.run_ends(),
                start,
                spans.spans(),
            ));
        }
        for (i, c) in self.mm_cols.iter().enumerate() {
            if let Some((mn, mx)) =
                enc_minmax_runs_spans(c.run_values(), c.run_ends(), start, spans.spans())
            {
                self.mins[i] = self.mins[i].min(mn);
                self.maxs[i] = self.maxs[i].max(mx);
            }
        }
    }

    /// Finish in the same result shape as [`SegmentAggExecutor::finish`]
    /// produces for a single group (empty MIN/MAX groups keep the
    /// identities, exactly as there).
    pub fn finish(self) -> SegmentAggResult {
        SegmentAggResult {
            counts: vec![self.count],
            sums: self.sums.into_iter().map(|s| vec![s]).collect(),
            mins: self.mins.into_iter().map(|m| vec![m]).collect(),
            maxs: self.maxs.into_iter().map(|m| vec![m]).collect(),
        }
    }
}

/// How this batch's rows were selected.
#[derive(Debug, PartialEq, Eq)]
enum BatchMode {
    /// All rows participate (no filter, or special-group fusion).
    Full,
    /// Only rows in `scratch.iv`; `physical` distinguishes compaction from
    /// gather.
    Selected {
        /// True for physical compaction, false for gather.
        physical: bool,
    },
}

fn unpack_full(
    pv: &bipie_toolbox::bitpack::PackedVec,
    start: usize,
    len: usize,
    buf: &mut ValueBuf,
    level: SimdLevel,
) {
    match WordSize::for_bits(pv.bits()) {
        WordSize::W1 => {
            let mut v = take_u8(buf);
            v.resize(len, 0);
            pv.unpack_into_u8(start, &mut v, level);
            *buf = ValueBuf::U8(v);
        }
        WordSize::W2 => {
            let mut v = take_u16(buf);
            v.resize(len, 0);
            pv.unpack_into_u16(start, &mut v, level);
            *buf = ValueBuf::U16(v);
        }
        WordSize::W4 => {
            let mut v = take_u32(buf);
            v.resize(len, 0);
            pv.unpack_into_u32(start, &mut v, level);
            *buf = ValueBuf::U32(v);
        }
        WordSize::W8 => {
            let mut v = take_u64(buf);
            v.resize(len, 0);
            pv.unpack_into_u64(start, &mut v, level);
            *buf = ValueBuf::U64(v);
        }
    }
}

fn gather_selected(
    pv: &bipie_toolbox::bitpack::PackedVec,
    abs_iv: &[u32],
    buf: &mut ValueBuf,
    level: SimdLevel,
) {
    match WordSize::for_bits(pv.bits()) {
        WordSize::W1 => {
            let mut v = take_u8(buf);
            v.resize(abs_iv.len(), 0);
            gather::gather_unpack_u8(pv, abs_iv, &mut v, level);
            *buf = ValueBuf::U8(v);
        }
        WordSize::W2 => {
            let mut v = take_u16(buf);
            v.resize(abs_iv.len(), 0);
            gather::gather_unpack_u16(pv, abs_iv, &mut v, level);
            *buf = ValueBuf::U16(v);
        }
        WordSize::W4 => {
            let mut v = take_u32(buf);
            v.resize(abs_iv.len(), 0);
            gather::gather_unpack_u32(pv, abs_iv, &mut v, level);
            *buf = ValueBuf::U32(v);
        }
        WordSize::W8 => {
            let mut v = take_u64(buf);
            v.resize(abs_iv.len(), 0);
            gather::gather_unpack_u64(pv, abs_iv, &mut v, level);
            *buf = ValueBuf::U64(v);
        }
    }
}

fn compact_buf(buf: &mut ValueBuf, sel: &[u8], level: SimdLevel) {
    match buf {
        ValueBuf::U8(v) => {
            let mut out = Vec::new();
            compact::compact_u8(v, sel, &mut out, level);
            *v = out;
        }
        ValueBuf::U16(v) => {
            let mut out = Vec::new();
            compact::compact_u16(v, sel, &mut out, level);
            *v = out;
        }
        ValueBuf::U32(v) => {
            let mut out = Vec::new();
            compact::compact_u32(v, sel, &mut out, level);
            *v = out;
        }
        ValueBuf::U64(v) => {
            let mut out = Vec::new();
            compact::compact_u64(v, sel, &mut out, level);
            *v = out;
        }
        // PANIC: compact_buf is only called on packed (U8/U16/U32/U64)
        // column buffers materialized by the Selected physical path.
        ValueBuf::I64(_) | ValueBuf::Empty => unreachable!("packed inputs only"),
    }
}

fn take_u8(buf: &mut ValueBuf) -> Vec<u8> {
    match std::mem::replace(buf, ValueBuf::Empty) {
        ValueBuf::U8(v) => v,
        _ => Vec::new(),
    }
}
fn take_u16(buf: &mut ValueBuf) -> Vec<u16> {
    match std::mem::replace(buf, ValueBuf::Empty) {
        ValueBuf::U16(v) => v,
        _ => Vec::new(),
    }
}
fn take_u32(buf: &mut ValueBuf) -> Vec<u32> {
    match std::mem::replace(buf, ValueBuf::Empty) {
        ValueBuf::U32(v) => v,
        _ => Vec::new(),
    }
}
fn take_u64(buf: &mut ValueBuf) -> Vec<u64> {
    match std::mem::replace(buf, ValueBuf::Empty) {
        ValueBuf::U64(v) => v,
        _ => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use bipie_columnstore::encoding::EncodingHint;
    use bipie_columnstore::{ColumnSpec, LogicalType, TableBuilder, Value};
    use bipie_toolbox::selvec::SelByteVec;

    /// Build a one-segment table: group column g (0..groups), values
    /// v = i * 3 - 50 (signed, exercises frame-of-reference), w = i % 97.
    fn test_segment(rows: usize, groups: i64) -> bipie_columnstore::Table {
        let mut b = TableBuilder::with_segment_rows(
            vec![
                ColumnSpec::new("g", LogicalType::I64).with_hint(EncodingHint::BitPack),
                ColumnSpec::new("v", LogicalType::I64).with_hint(EncodingHint::BitPack),
                ColumnSpec::new("w", LogicalType::I64).with_hint(EncodingHint::BitPack),
            ],
            1 << 20,
        );
        for i in 0..rows as i64 {
            b.push_row(vec![
                Value::I64((i * 7 + i / 11) % groups),
                Value::I64(i * 3 - 50),
                Value::I64(i % 97),
            ]);
        }
        b.finish()
    }

    /// Oracle: counts and sums for selected rows.
    fn oracle(
        rows: usize,
        groups: usize,
        keep: impl Fn(usize) -> bool,
        exprs: &[&dyn Fn(i64, i64) -> i64],
    ) -> (Vec<u64>, Vec<Vec<i64>>) {
        let mut counts = vec![0u64; groups];
        let mut sums = vec![vec![0i64; groups]; exprs.len()];
        for i in 0..rows as i64 {
            if !keep(i as usize) {
                continue;
            }
            let g = ((i * 7 + i / 11) % groups as i64) as usize;
            counts[g] += 1;
            let v = i * 3 - 50;
            let w = i % 97;
            for (e, f) in exprs.iter().enumerate() {
                sums[e][g] += f(v, w);
            }
        }
        (counts, sums)
    }

    fn run_combo(
        rows: usize,
        groups: usize,
        agg: AggStrategy,
        selection: SelectionStrategy,
        with_filter: bool,
        with_expr: bool,
    ) -> SegmentAggResult {
        let table = test_segment(rows, groups as i64);
        let seg = &table.segments()[0];
        let level = SimdLevel::detect();
        let packed_v = match seg.column(1) {
            bipie_columnstore::encoding::EncodedColumn::BitPack(c) => c,
            _ => panic!("expected bitpack"),
        };
        let packed_w = match seg.column(2) {
            bipie_columnstore::encoding::EncodedColumn::BitPack(c) => c,
            _ => panic!("expected bitpack"),
        };
        let mut inputs = vec![AggInput::Packed(packed_v), AggInput::Packed(packed_w)];
        if with_expr {
            // w * (100 - w): a Q1-shaped computed expression.
            let e = Expr::col("w")
                .mul(Expr::lit(100).sub(Expr::col("w")))
                .resolve(&|name| table.column_index(name))
                .unwrap();
            inputs.push(AggInput::Computed(e));
        }
        let mut exec = SegmentAggExecutor::new(agg, groups, inputs, level);
        // Group ids straight from the bitpack normalized domain.
        let gcol = match seg.column(0) {
            bipie_columnstore::encoding::EncodedColumn::BitPack(c) => c,
            _ => panic!("expected bitpack"),
        };
        for batch in bipie_columnstore::BatchCursor::with_batch_rows(rows, 1000) {
            let mut gids = vec![0u8; batch.len];
            gcol.normalized().unpack_into_u8(batch.start, &mut gids, level);
            if with_filter {
                let sel = SelByteVec::from_bools(
                    &(0..batch.len).map(|k| (batch.start + k) % 5 != 2).collect::<Vec<_>>(),
                );
                exec.process_batch(
                    seg,
                    batch.start,
                    batch.len,
                    &mut gids,
                    Some(sel.as_bytes()),
                    selection,
                );
            } else {
                exec.process_batch(seg, batch.start, batch.len, &mut gids, None, selection);
            }
        }
        exec.finish()
    }

    #[test]
    fn all_strategy_combinations_agree_with_oracle() {
        let rows = 5000;
        let groups = 6;
        for with_filter in [false, true] {
            let keep = |i: usize| !with_filter || i % 5 != 2;
            let (counts, sums) =
                oracle(rows, groups, keep, &[&|v, _| v, &|_, w| w, &|_, w| w * (100 - w)]);
            for agg in AggStrategy::DENSE {
                for selection in SelectionStrategy::DENSE {
                    let r = run_combo(rows, groups, agg, selection, with_filter, true);
                    assert_eq!(r.counts, counts, "{agg:?}+{selection:?} filter={with_filter}");
                    assert_eq!(r.sums, sums, "{agg:?}+{selection:?} filter={with_filter}");
                }
            }
        }
    }

    #[test]
    fn count_only_queries() {
        let rows = 3000;
        let groups = 4;
        let table = test_segment(rows, groups as i64);
        let seg = &table.segments()[0];
        let level = SimdLevel::detect();
        let gcol = match seg.column(0) {
            bipie_columnstore::encoding::EncodedColumn::BitPack(c) => c,
            _ => panic!(),
        };
        let mut exec = SegmentAggExecutor::new(AggStrategy::InRegister, groups, vec![], level);
        let mut gids = vec![0u8; rows];
        gcol.normalized().unpack_into_u8(0, &mut gids, level);
        exec.process_batch(seg, 0, rows, &mut gids, None, SelectionStrategy::SpecialGroup);
        let r = exec.finish();
        let (counts, _) = oracle(rows, groups, |_| true, &[]);
        assert_eq!(r.counts, counts);
        assert!(r.sums.is_empty());
    }

    #[test]
    fn run_wise_executor_matches_row_oracle() {
        // RLE column with mixed run lengths; span selection keeps rows whose
        // value is even. Batched consumption must equal the per-row oracle.
        let values: Vec<i64> = (0..40i64)
            .flat_map(|r| std::iter::repeat_n((r % 7) - 3, 17 + (r as usize % 5)))
            .collect();
        let col = RleColumn::encode(&values);
        let mut exec = RunWiseExec::new(vec![&col], vec![&col]);
        let batch = 100;
        let mut start = 0usize;
        while start < values.len() {
            let len = batch.min(values.len() - start);
            let mut spans = RunSpanVec::new();
            let mut row = start;
            while row < start + len {
                if values[row] % 2 == 0 {
                    spans.push((row - start) as u32, 1);
                }
                row += 1;
            }
            exec.process_spans(start, &spans);
            start += len;
        }
        let r = exec.finish();
        let kept: Vec<i64> = values.iter().copied().filter(|v| v % 2 == 0).collect();
        assert_eq!(r.counts, vec![kept.len() as u64]);
        assert_eq!(r.sums, vec![vec![kept.iter().sum::<i64>()]]);
        assert_eq!(r.mins, vec![vec![*kept.iter().min().unwrap()]]);
        assert_eq!(r.maxs, vec![vec![*kept.iter().max().unwrap()]]);
    }

    #[test]
    fn empty_selection_batches() {
        let rows = 1000;
        let groups = 3;
        let table = test_segment(rows, groups as i64);
        let seg = &table.segments()[0];
        let level = SimdLevel::detect();
        let gcol = match seg.column(0) {
            bipie_columnstore::encoding::EncodedColumn::BitPack(c) => c,
            _ => panic!(),
        };
        let packed_v = match seg.column(1) {
            bipie_columnstore::encoding::EncodedColumn::BitPack(c) => c,
            _ => panic!(),
        };
        for selection in SelectionStrategy::DENSE {
            let mut exec = SegmentAggExecutor::new(
                AggStrategy::Scalar,
                groups,
                vec![AggInput::Packed(packed_v)],
                level,
            );
            let mut gids = vec![0u8; rows];
            gcol.normalized().unpack_into_u8(0, &mut gids, level);
            let sel = SelByteVec::none(rows);
            exec.process_batch(seg, 0, rows, &mut gids, Some(sel.as_bytes()), selection);
            let r = exec.finish();
            assert!(r.counts.iter().all(|&c| c == 0), "{selection:?}");
            assert!(r.sums[0].iter().all(|&s| s == 0), "{selection:?}");
        }
    }
}
