//! Per-query resource governance: cooperative cancellation, wall-clock
//! deadlines, and a memory accountant (DESIGN.md §10).
//!
//! The batch-at-a-time execution model gives the engine natural cooperative
//! checkpoints — every morsel claim and every batch boundary — so limits are
//! enforced without preemption and without per-row cost. A [`Governor`] is
//! built per query from the three `QueryOptions` knobs (`cancel`,
//! `time_budget`, `mem_budget`) and carried by reference through the scan.
//! When none of the knobs is set the governor is *inactive* and every
//! [`Governor::check`] compiles to a single branch on a cold `bool` — the
//! same discipline `ProfileLevel::Off` holds itself to (DESIGN.md §9).
//!
//! Violations trip a shared cause latch so that every worker reconstructs
//! the *same* typed error ([`EngineError::Cancelled`],
//! [`EngineError::DeadlineExceeded`], [`EngineError::MemoryBudgetExceeded`])
//! no matter which limit it observes first; workers park normally and the
//! pool stays reusable.
//!
//! Memory is accounted through per-worker [`MemScope`]s that draw
//! `MEM_SLACK_BYTES`-sized (64 KiB) chunks from the shared counter, so per-batch
//! charges stay off the atomic. Accounting is therefore chunk-quantized:
//! the reserved peak can exceed actual allocation by up to one slack chunk
//! per worker, and a charge that fails after the slack over-grab retries
//! with the exact need so a budget that genuinely fits is never refused.

use std::sync::atomic::{AtomicBool, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bipie_metrics::Deadline;

use crate::error::{EngineError, Result};

/// Cooperative cancellation handle: a shared atomic flag, cloneable by
/// callers. Hand a clone to [`crate::QueryOptions::cancel`] and call
/// [`CancelToken::cancel`] from any thread; the running query observes the
/// flag at its next morsel claim or batch boundary and returns
/// [`EngineError::Cancelled`].
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Request cancellation. Idempotent; visible to every clone.
    pub fn cancel(&self) {
        // ORDERING: Relaxed — a lone monotonic flag carrying no payload;
        // workers poll it at batch boundaries, and "soon after" is the
        // contract, not a happens-before edge.
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested on any clone.
    pub fn is_cancelled(&self) -> bool {
        // ORDERING: Relaxed — pairs with the Relaxed store in `cancel`;
        // the flag is the entire message, nothing is published behind it.
        self.flag.load(Ordering::Relaxed)
    }
}

/// Chunk size a [`MemScope`] draws from the shared counter. Large enough
/// that per-batch charges almost never touch the atomic, small enough that
/// per-worker slack stays negligible next to any realistic budget.
pub(crate) const MEM_SLACK_BYTES: usize = 64 << 10;

const CAUSE_NONE: u8 = 0;
const CAUSE_CANCELLED: u8 = 1;
const CAUSE_DEADLINE: u8 = 2;
const CAUSE_MEMORY: u8 = 3;

/// Per-query resource governor. Built once in `scan_table` and shared by
/// reference with every worker; all state is interior atomics.
#[derive(Debug)]
pub struct Governor {
    cancel: Option<CancelToken>,
    deadline: Option<Deadline>,
    mem_budget: Option<usize>,
    /// Bytes currently reserved against the budget (includes worker slack).
    reserved: AtomicUsize,
    /// High-water mark of `reserved`.
    peak: AtomicUsize,
    /// First violation cause (`CAUSE_*`); latched once, read by everyone.
    cause: AtomicU8,
    /// Bytes requested at the memory trip, for the error payload.
    trip_requested: AtomicUsize,
    /// Whether any limit is set. When false, `check` is one branch.
    active: bool,
}

impl Governor {
    /// Build a governor from the query's limit knobs. The deadline clock
    /// starts now, so construct this at scan admission, not query parse.
    pub fn new(
        cancel: Option<CancelToken>,
        time_budget: Option<Duration>,
        mem_budget: Option<usize>,
    ) -> Governor {
        let active = cancel.is_some() || time_budget.is_some() || mem_budget.is_some();
        Governor {
            cancel,
            deadline: time_budget.map(Deadline::after),
            mem_budget,
            reserved: AtomicUsize::new(0),
            peak: AtomicUsize::new(0),
            cause: AtomicU8::new(CAUSE_NONE),
            trip_requested: AtomicUsize::new(0),
            active,
        }
    }

    /// A governor with no limits: `check` is a single cold-flag branch and
    /// memory accounting is off.
    pub fn unlimited() -> Governor {
        Governor::new(None, None, None)
    }

    /// Whether any limit is set. Callers may use this to skip bookkeeping
    /// (e.g. check counting) on the unlimited path.
    #[inline]
    pub fn active(&self) -> bool {
        self.active
    }

    /// The cooperative checkpoint: called at every morsel claim and batch
    /// boundary. Inactive governors return `Ok` after one branch.
    #[inline]
    pub fn check(&self) -> Result<()> {
        if !self.active {
            return Ok(());
        }
        self.check_active()
    }

    fn check_active(&self) -> Result<()> {
        // A sibling worker may already have tripped; report its cause so
        // every worker surfaces the same error.
        // ORDERING: Relaxed — the cause byte is self-contained; a worker
        // that misses it this check trips on the next one. The associated
        // `trip_requested` value is a best-effort detail (see `trip`).
        match self.cause.load(Ordering::Relaxed) {
            CAUSE_NONE => {}
            c => return Err(self.cause_error(c)),
        }
        if let Some(t) = &self.cancel {
            if t.is_cancelled() {
                return Err(self.trip(CAUSE_CANCELLED, 0));
            }
        }
        if let Some(d) = &self.deadline {
            if d.reached() {
                return Err(self.trip(CAUSE_DEADLINE, 0));
            }
        }
        Ok(())
    }

    /// Whether a memory budget is set (i.e. [`MemScope::charge`] does work).
    #[inline]
    pub fn accounts_memory(&self) -> bool {
        self.mem_budget.is_some()
    }

    /// Admit a plan-time *projection* of `bytes` without reserving them:
    /// projections are upper bounds (e.g. a wide segment's group-domain
    /// product), so execution still charges actuals. Failing here is the
    /// "at plan" half of the fail-at-plan-or-first-reservation contract.
    pub fn admit_projection(&self, bytes: usize) -> Result<()> {
        match self.mem_budget {
            Some(budget) if bytes > budget => Err(self.trip_memory(bytes)),
            _ => Ok(()),
        }
    }

    /// Remaining budget headroom, for the budget-aware strategy chooser.
    /// `None` when no budget is set.
    pub fn remaining(&self) -> Option<usize> {
        // ORDERING: Relaxed — advisory headroom snapshot; admission is
        // decided by the fetch_add in `try_reserve_global`, not here.
        self.mem_budget.map(|b| b.saturating_sub(self.reserved.load(Ordering::Relaxed)))
    }

    /// High-water mark of reserved bytes (slack chunks included).
    pub fn peak_reserved(&self) -> usize {
        // ORDERING: Relaxed — statistics read after workers quiesce; while
        // they run it is an approximate progress number.
        self.peak.load(Ordering::Relaxed)
    }

    /// Move `bytes` from budget headroom to the reserved counter, or report
    /// that the budget cannot cover them (without tripping — the caller
    /// decides whether a smaller request would do).
    fn try_reserve_global(&self, bytes: usize) -> bool {
        let Some(budget) = self.mem_budget else {
            return true;
        };
        // ORDERING: Relaxed — fetch_add/fetch_sub are atomic RMWs on one
        // counter, which is all the budget check needs: the total can never
        // over-admit regardless of ordering, and the counter guards no
        // other memory.
        let prev = self.reserved.fetch_add(bytes, Ordering::Relaxed);
        let now = prev.saturating_add(bytes);
        if now > budget {
            // ORDERING: Relaxed — undo of the optimistic add; same counter,
            // same reasoning.
            self.reserved.fetch_sub(bytes, Ordering::Relaxed);
            return false;
        }
        // ORDERING: Relaxed — monotone max folded from per-thread observations;
        // read only for statistics.
        self.peak.fetch_max(now, Ordering::Relaxed);
        true
    }

    /// Latch a memory violation of `requested` bytes and return the typed
    /// error (or the earlier cause if another worker tripped first).
    fn trip_memory(&self, requested: usize) -> EngineError {
        self.trip(CAUSE_MEMORY, requested)
    }

    fn trip(&self, cause: u8, requested: usize) -> EngineError {
        // First trip wins; later trips re-report the original cause so all
        // workers unwind with one consistent error.
        if self
            .cause
            // ORDERING: Relaxed — the CAS decides the winner atomically; no
            // payload needs to be published before the cause byte becomes
            // visible (`trip_requested` below is advisory, see next comment).
            .compare_exchange(CAUSE_NONE, cause, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            // ORDERING: Relaxed — written after the CAS, so a racing reader
            // may see the cause with a zero `requested`; that only softens
            // the error message detail, never the cause itself. The winner
            // reports its own exact value from the stack.
            self.trip_requested.store(requested, Ordering::Relaxed);
            return self.make_error(cause, requested);
        }
        // ORDERING: Relaxed — the CAS failed, so the cause byte is already
        // set and stable (it is written exactly once).
        self.cause_error(self.cause.load(Ordering::Relaxed))
    }

    fn cause_error(&self, cause: u8) -> EngineError {
        // ORDERING: Relaxed — best-effort detail for the error message; a
        // racing zero is acceptable (see `trip`).
        self.make_error(cause, self.trip_requested.load(Ordering::Relaxed))
    }

    fn make_error(&self, cause: u8, requested: usize) -> EngineError {
        match cause {
            CAUSE_CANCELLED => EngineError::Cancelled,
            CAUSE_DEADLINE => EngineError::DeadlineExceeded,
            _ => EngineError::MemoryBudgetExceeded {
                budget: self.mem_budget.unwrap_or(0),
                requested,
            },
        }
    }
}

/// Process-level memory accountant layered *above* per-query governors
/// (DESIGN.md §15): the engine charges every admitted query's declared
/// `mem_budget` here before the query's own [`Governor`] starts accounting
/// actual allocations against that declaration. The sum of admitted
/// declarations can therefore never exceed the cap, whatever the queries
/// then allocate within their own budgets.
#[derive(Debug)]
pub struct AggregateBudget {
    cap: usize,
    /// Declared bytes of currently admitted queries.
    reserved: AtomicUsize,
    /// High-water mark of `reserved`.
    peak: AtomicUsize,
}

impl AggregateBudget {
    /// An accountant with `cap` bytes of aggregate headroom.
    pub fn new(cap: usize) -> AggregateBudget {
        AggregateBudget { cap, reserved: AtomicUsize::new(0), peak: AtomicUsize::new(0) }
    }

    /// The configured cap in bytes.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Reserve `bytes` of the aggregate cap, or report that they do not
    /// fit right now. Mirrors the governor's global reservation: optimistic
    /// add with undo, so concurrent admitters can never jointly overshoot.
    pub fn try_reserve(&self, bytes: usize) -> bool {
        // ORDERING: Relaxed — single-counter RMW admission, identical
        // reasoning to `Governor::try_reserve_global`: the total cannot
        // over-admit under any ordering and the counter guards no memory.
        let prev = self.reserved.fetch_add(bytes, Ordering::Relaxed);
        let now = prev.saturating_add(bytes);
        if now > self.cap {
            // ORDERING: Relaxed — undo of the optimistic add; same counter.
            self.reserved.fetch_sub(bytes, Ordering::Relaxed);
            return false;
        }
        // ORDERING: Relaxed — monotone max for statistics only.
        self.peak.fetch_max(now, Ordering::Relaxed);
        true
    }

    /// Return `bytes` previously reserved with [`AggregateBudget::try_reserve`].
    pub fn release(&self, bytes: usize) {
        // ORDERING: Relaxed — same single-counter reasoning as the reserve.
        self.reserved.fetch_sub(bytes, Ordering::Relaxed);
    }

    /// Declared bytes of currently admitted queries.
    pub fn reserved(&self) -> usize {
        // ORDERING: Relaxed — advisory snapshot for diagnostics; admission
        // is decided by the RMW in `try_reserve`, not by this read.
        self.reserved.load(Ordering::Relaxed)
    }

    /// High-water mark of the reserved counter.
    pub fn peak_reserved(&self) -> usize {
        // ORDERING: Relaxed — statistics read; approximate while admitters
        // race, exact once they quiesce.
        self.peak.load(Ordering::Relaxed)
    }
}

/// Per-worker memory accountant. Owns locally reserved slack so per-batch
/// charges are plain integer arithmetic; only slack refills touch the
/// governor's shared counter. `Copy` so scan state can embed it freely.
#[derive(Debug, Default, Clone, Copy)]
pub struct MemScope {
    /// Bytes reserved on the governor but not yet charged to an allocation.
    avail: usize,
}

impl MemScope {
    /// Charge `bytes` of scan-owned allocation against the budget. With no
    /// budget set this is one branch. On violation the governor's cause
    /// latch is tripped and the typed error returned.
    pub fn charge(&mut self, gov: &Governor, bytes: usize) -> Result<()> {
        if !gov.accounts_memory() {
            return Ok(());
        }
        if bytes <= self.avail {
            self.avail -= bytes;
            return Ok(());
        }
        let need = bytes - self.avail;
        let chunk = need.max(MEM_SLACK_BYTES);
        if gov.try_reserve_global(chunk) {
            self.avail += chunk;
            self.avail -= bytes;
            return Ok(());
        }
        // The slack over-grab may be what failed; retry with the exact need
        // so a budget that genuinely fits is never refused.
        if chunk > need && gov.try_reserve_global(need) {
            self.avail = 0;
            return Ok(());
        }
        Err(gov.trip_memory(need))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_governor_is_one_branch_ok() {
        let g = Governor::unlimited();
        assert!(!g.active());
        assert!(g.check().is_ok());
        assert_eq!(g.peak_reserved(), 0);
        assert_eq!(g.remaining(), None);
    }

    #[test]
    fn cancel_token_is_shared_across_clones() {
        let t = CancelToken::new();
        let clone = t.clone();
        assert!(!clone.is_cancelled());
        t.cancel();
        assert!(clone.is_cancelled());
    }

    #[test]
    fn cancelled_token_trips_and_latches() {
        let t = CancelToken::new();
        let g = Governor::new(Some(t.clone()), None, None);
        assert!(g.active());
        assert!(g.check().is_ok());
        t.cancel();
        assert_eq!(g.check(), Err(EngineError::Cancelled));
        // Latched: later checks keep reporting the same cause.
        assert_eq!(g.check(), Err(EngineError::Cancelled));
    }

    #[test]
    fn expired_deadline_trips() {
        let g = Governor::new(None, Some(Duration::from_nanos(1)), None);
        std::thread::sleep(Duration::from_millis(1));
        assert_eq!(g.check(), Err(EngineError::DeadlineExceeded));
    }

    #[test]
    fn first_cause_wins_over_later_ones() {
        let t = CancelToken::new();
        let g = Governor::new(Some(t.clone()), None, Some(100));
        let mut scope = MemScope::default();
        let e = scope.charge(&g, 500).unwrap_err();
        assert_eq!(e, EngineError::MemoryBudgetExceeded { budget: 100, requested: 500 });
        // Cancelling afterwards does not rewrite history: every worker that
        // checks now still sees the memory violation.
        t.cancel();
        assert_eq!(
            g.check(),
            Err(EngineError::MemoryBudgetExceeded { budget: 100, requested: 500 })
        );
    }

    #[test]
    fn exact_need_retry_after_slack_overgrab() {
        // Budget far below one slack chunk: the chunk grab fails, the exact
        // need succeeds — a budget that genuinely fits is never refused.
        let g = Governor::new(None, None, Some(100));
        let mut scope = MemScope::default();
        assert!(scope.charge(&g, 40).is_ok());
        assert_eq!(g.peak_reserved(), 40);
        let e = scope.charge(&g, 70).unwrap_err();
        assert_eq!(e, EngineError::MemoryBudgetExceeded { budget: 100, requested: 70 });
        assert_eq!(g.peak_reserved(), 40);
    }

    #[test]
    fn slack_keeps_small_charges_off_the_shared_counter() {
        let g = Governor::new(None, None, Some(1 << 20));
        let mut scope = MemScope::default();
        assert!(scope.charge(&g, 10).is_ok());
        // One slack chunk was drawn; further small charges draw it down
        // without growing the shared reservation.
        assert_eq!(g.peak_reserved(), MEM_SLACK_BYTES);
        assert!(scope.charge(&g, 1000).is_ok());
        assert_eq!(g.peak_reserved(), MEM_SLACK_BYTES);
    }

    #[test]
    fn projection_admission_checks_whole_budget() {
        let g = Governor::new(None, None, Some(1 << 20));
        assert!(g.admit_projection(1 << 20).is_ok());
        let e = g.admit_projection((1 << 20) + 1).unwrap_err();
        assert_eq!(
            e,
            EngineError::MemoryBudgetExceeded { budget: 1 << 20, requested: (1 << 20) + 1 }
        );
    }

    #[test]
    fn aggregate_budget_admits_to_cap_and_releases() {
        let agg = AggregateBudget::new(100);
        assert_eq!(agg.cap(), 100);
        assert!(agg.try_reserve(60));
        assert!(agg.try_reserve(40));
        // Full: even one more byte is refused, and the refusal undoes its
        // optimistic add.
        assert!(!agg.try_reserve(1));
        assert_eq!(agg.reserved(), 100);
        assert_eq!(agg.peak_reserved(), 100);
        agg.release(40);
        assert_eq!(agg.reserved(), 60);
        assert!(agg.try_reserve(30));
        assert_eq!(agg.peak_reserved(), 100);
    }

    #[test]
    fn no_budget_means_no_accounting() {
        let g = Governor::new(Some(CancelToken::new()), None, None);
        let mut scope = MemScope::default();
        assert!(scope.charge(&g, usize::MAX).is_ok());
        assert_eq!(g.peak_reserved(), 0);
    }
}
