//! Public query API (§2.3).
//!
//! BIPie targets queries of the shape
//!
//! ```sql
//! SELECT g, count(*), sum(a1), ..., sum(an)
//! FROM columnarTable
//! WHERE <filter> GROUP BY g;
//! ```
//!
//! with optional filters and aggregates, one or more group-by columns, and
//! sums over arbitrary arithmetic expressions. [`QueryBuilder`] assembles a
//! [`Query`]; [`execute`] runs it against a [`Table`], scanning immutable
//! segments with the vectorized engine and the (small) mutable region
//! row-at-a-time. Results are ordered by the group-by key.

use std::collections::BTreeMap;

use bipie_columnstore::{LogicalType, Table, Value};
use bipie_toolbox::SimdLevel;

use crate::error::{EngineError, Result};
use crate::expr::Expr;
use crate::filter::Predicate;
use crate::scan::{scan_table, GroupAcc, ScanOptions};
use crate::stats::ExecStats;
use crate::strategy::{AggStrategy, SelectionStrategy, StrategyConfig};
use crate::trace::{Phase, ProfileLevel, QueryProfile, SpanLoc, Tracer};

/// An aggregate in the SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum AggExpr {
    /// `COUNT(*)`.
    CountStar,
    /// `SUM(expr)`.
    Sum(Expr),
    /// `AVG(expr)` — computed as `SUM(expr) / COUNT(*)` at output.
    Avg(Expr),
    /// `MIN(expr)` (extension beyond the paper's COUNT/SUM workload).
    Min(Expr),
    /// `MAX(expr)`.
    Max(Expr),
}

impl AggExpr {
    /// `COUNT(*)`.
    pub fn count_star() -> AggExpr {
        AggExpr::CountStar
    }

    /// `SUM(column)`.
    pub fn sum(column: impl Into<String>) -> AggExpr {
        AggExpr::Sum(Expr::Col(column.into()))
    }

    /// `SUM(expr)`.
    pub fn sum_expr(expr: Expr) -> AggExpr {
        AggExpr::Sum(expr)
    }

    /// `AVG(column)`.
    pub fn avg(column: impl Into<String>) -> AggExpr {
        AggExpr::Avg(Expr::Col(column.into()))
    }

    /// `AVG(expr)`.
    pub fn avg_expr(expr: Expr) -> AggExpr {
        AggExpr::Avg(expr)
    }

    /// `MIN(column)`.
    pub fn min(column: impl Into<String>) -> AggExpr {
        AggExpr::Min(Expr::Col(column.into()))
    }

    /// `MAX(column)`.
    pub fn max(column: impl Into<String>) -> AggExpr {
        AggExpr::Max(Expr::Col(column.into()))
    }

    /// `MIN(expr)`.
    pub fn min_expr(expr: Expr) -> AggExpr {
        AggExpr::Min(expr)
    }

    /// `MAX(expr)`.
    pub fn max_expr(expr: Expr) -> AggExpr {
        AggExpr::Max(expr)
    }
}

/// Execution options.
#[derive(Debug, Clone)]
pub struct QueryOptions {
    /// Force one selection strategy for every batch (experiments; `None` =
    /// adaptive, §3).
    pub forced_selection: Option<SelectionStrategy>,
    /// Force one aggregation strategy for every segment.
    pub forced_agg: Option<AggStrategy>,
    /// Scan morsels on parallel pool workers.
    pub parallel: bool,
    /// Worker count for parallel scans; `None` uses the hardware
    /// parallelism. `Some(1)` forces a serial scan.
    pub threads: Option<usize>,
    /// SIMD tier.
    pub level: SimdLevel,
    /// Rows per batch window (§2.1: "up to 4096 rows in MemSQL").
    pub batch_rows: usize,
    /// Rows per parallel morsel; rounded up to whole batch windows so the
    /// parallel batch grid matches the serial one.
    pub morsel_rows: usize,
    /// Strategy-chooser constants.
    pub config: StrategyConfig,
    /// Profiling level. [`ProfileLevel::Off`] (the default) keeps the batch
    /// loops free of timestamps, atomics, and event stores; `Counters`
    /// collects per-phase totals; `Spans` additionally keeps the full
    /// span/decision event log in [`QueryResult::profile`].
    pub profile: ProfileLevel,
    /// Cooperative cancellation token; `cancel()` on any clone makes the
    /// query return [`EngineError::Cancelled`](crate::error::EngineError) at
    /// its next governor checkpoint (DESIGN.md §10).
    pub cancel: Option<crate::governor::CancelToken>,
    /// Wall-clock budget for the whole query; exceeded budgets surface as
    /// `EngineError::DeadlineExceeded`. Must be nonzero when set.
    pub time_budget: Option<std::time::Duration>,
    /// Byte budget for scan-side allocations (accumulators, group tables,
    /// selection scratch); exceeded budgets surface as
    /// `EngineError::MemoryBudgetExceeded`. Must be nonzero when set.
    pub mem_budget: Option<usize>,
    /// Shared-scheduler identity for the pool's weighted-fair interleaving
    /// (DESIGN.md §15). The [`Engine`](crate::engine::Engine) stamps each
    /// admitted query with a unique id and its session's weight; direct
    /// `execute` callers keep the default untagged queue.
    pub tag: crate::pool::QueryTag,
}

impl Default for QueryOptions {
    fn default() -> Self {
        QueryOptions {
            forced_selection: None,
            forced_agg: None,
            parallel: true,
            threads: None,
            level: SimdLevel::detect(),
            batch_rows: bipie_columnstore::BATCH_ROWS,
            morsel_rows: bipie_columnstore::MORSEL_ROWS,
            config: StrategyConfig::default(),
            profile: ProfileLevel::Off,
            cancel: None,
            time_budget: None,
            mem_budget: None,
            tag: crate::pool::QueryTag::default(),
        }
    }
}

impl QueryOptions {
    /// Check option values without executing anything; [`execute`] performs
    /// the same check, so this is for builders that want to fail fast.
    pub fn validate(&self) -> Result<()> {
        crate::scan::validate_scan_options(&self.to_scan_options())
    }

    fn to_scan_options(&self) -> ScanOptions {
        ScanOptions {
            level: self.level,
            forced_selection: self.forced_selection,
            forced_agg: self.forced_agg,
            parallel: self.parallel,
            threads: self.threads,
            batch_rows: self.batch_rows,
            morsel_rows: self.morsel_rows,
            config: self.config.clone(),
            profile: self.profile,
            cancel: self.cancel.clone(),
            time_budget: self.time_budget,
            mem_budget: self.mem_budget,
            tag: self.tag,
        }
    }
}

/// A compiled query specification.
#[derive(Debug, Clone)]
pub struct Query {
    /// Optional WHERE predicate.
    pub filter: Option<Predicate>,
    /// GROUP BY column names (may be empty: one global group).
    pub group_by: Vec<String>,
    /// SELECT-list aggregates.
    pub aggregates: Vec<AggExpr>,
    /// Execution options.
    pub options: QueryOptions,
}

/// Fluent builder for [`Query`].
#[derive(Debug, Clone, Default)]
pub struct QueryBuilder {
    filter: Option<Predicate>,
    group_by: Vec<String>,
    aggregates: Vec<AggExpr>,
    options: Option<QueryOptions>,
}

impl QueryBuilder {
    /// Start an empty query.
    pub fn new() -> QueryBuilder {
        QueryBuilder::default()
    }

    /// Set the WHERE predicate (subsequent calls AND together).
    pub fn filter(mut self, pred: Predicate) -> QueryBuilder {
        self.filter = Some(match self.filter.take() {
            Some(existing) => Predicate::and(vec![existing, pred]),
            None => pred,
        });
        self
    }

    /// Add a GROUP BY column.
    pub fn group_by(mut self, column: impl Into<String>) -> QueryBuilder {
        self.group_by.push(column.into());
        self
    }

    /// Add an aggregate.
    pub fn aggregate(mut self, agg: AggExpr) -> QueryBuilder {
        self.aggregates.push(agg);
        self
    }

    /// Set execution options.
    pub fn options(mut self, options: QueryOptions) -> QueryBuilder {
        self.options = Some(options);
        self
    }

    /// Finish the specification.
    pub fn build(self) -> Query {
        Query {
            filter: self.filter,
            group_by: self.group_by,
            aggregates: self.aggregates,
            options: self.options.unwrap_or_default(),
        }
    }
}

/// One output value of an aggregate.
#[derive(Debug, Clone, PartialEq)]
pub enum AggValue {
    /// COUNT(*) result.
    Count(u64),
    /// SUM result (storage-scaled integer).
    Sum(i64),
    /// AVG result.
    Avg(f64),
    /// MIN result (storage-scaled integer).
    Min(i64),
    /// MAX result (storage-scaled integer).
    Max(i64),
}

impl AggValue {
    /// The value as f64 (for display and comparisons).
    pub fn as_f64(&self) -> f64 {
        match self {
            AggValue::Count(c) => *c as f64,
            AggValue::Sum(s) => *s as f64,
            AggValue::Avg(a) => *a,
            AggValue::Min(v) | AggValue::Max(v) => *v as f64,
        }
    }

    /// The integer sum, if this is a SUM.
    pub fn as_sum(&self) -> Option<i64> {
        match self {
            AggValue::Sum(s) => Some(*s),
            _ => None,
        }
    }

    /// The count, if this is a COUNT.
    pub fn as_count(&self) -> Option<u64> {
        match self {
            AggValue::Count(c) => Some(*c),
            _ => None,
        }
    }
}

/// One result row: group key plus aggregate values.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultRow {
    /// Group-by key values, in GROUP BY order.
    pub keys: Vec<Value>,
    /// Aggregate values, in SELECT-list order.
    pub aggs: Vec<AggValue>,
}

/// A query result: rows ordered by group key, plus execution stats.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Names of the group-by columns.
    pub group_columns: Vec<String>,
    /// Result rows, ordered by group key.
    pub rows: Vec<ResultRow>,
    /// Execution statistics.
    pub stats: ExecStats,
    /// The query profile — empty unless [`QueryOptions::profile`] opted in.
    pub profile: QueryProfile,
}

impl QueryResult {
    /// Number of result rows (groups).
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Find the row with the given group key.
    pub fn row_for(&self, keys: &[Value]) -> Option<&ResultRow> {
        self.rows.iter().find(|r| r.keys == keys)
    }
}

/// Execute a query against a table.
///
/// This is also the engine's telemetry seam: on completion the finished
/// [`ExecStats`] and [`QueryProfile`] are published once into the process
/// [`EngineTelemetry`](crate::telemetry::EngineTelemetry) handle (fleet
/// counters, latency histogram, decision log); errors publish into the
/// error/governor-trip counters. No hot-path code touches the registry.
pub fn execute(table: &Table, query: &Query) -> Result<QueryResult> {
    let started = std::time::Instant::now();
    match execute_inner(table, query) {
        Ok(result) => {
            crate::telemetry::telemetry().publish_query(
                &result.stats,
                &result.profile,
                started.elapsed(),
            );
            Ok(result)
        }
        Err(err) => {
            crate::telemetry::telemetry().publish_error(&err);
            Err(err)
        }
    }
}

fn execute_inner(table: &Table, query: &Query) -> Result<QueryResult> {
    // Reject malformed execution options before resolving anything, so the
    // caller gets a typed error at plan time rather than a panic mid-scan.
    query.options.validate()?;

    // Resolve group-by columns.
    let mut group_cols = Vec::with_capacity(query.group_by.len());
    for name in &query.group_by {
        let idx =
            table.column_index(name).ok_or_else(|| EngineError::UnknownColumn(name.clone()))?;
        group_cols.push((idx, table.specs()[idx].ty));
    }

    // Collect sum expressions (AVG contributes a sum too), deduplicating
    // identical expressions so e.g. Q1's SUM(l_quantity) and
    // AVG(l_quantity) share one accumulator — this keeps the input count
    // small enough for the multi-aggregate row layout.
    fn slot_of<'q>(e: &'q Expr, list: &mut Vec<&'q Expr>) -> usize {
        match list.iter().position(|x| *x == e) {
            Some(i) => i,
            None => {
                list.push(e);
                list.len() - 1
            }
        }
    }
    let mut sum_exprs_src: Vec<&Expr> = Vec::new();
    let mut agg_plan: Vec<AggPlan> = Vec::new();
    let mut mm_exprs_src: Vec<&Expr> = Vec::new();
    for agg in &query.aggregates {
        match agg {
            AggExpr::CountStar => agg_plan.push(AggPlan::Count),
            AggExpr::Sum(e) => {
                check_expr_types(table, e)?;
                agg_plan.push(AggPlan::Sum(slot_of(e, &mut sum_exprs_src)));
            }
            AggExpr::Avg(e) => {
                check_expr_types(table, e)?;
                agg_plan.push(AggPlan::Avg(slot_of(e, &mut sum_exprs_src)));
            }
            AggExpr::Min(e) => {
                check_expr_types(table, e)?;
                agg_plan.push(AggPlan::Min(slot_of(e, &mut mm_exprs_src)));
            }
            AggExpr::Max(e) => {
                check_expr_types(table, e)?;
                agg_plan.push(AggPlan::Max(slot_of(e, &mut mm_exprs_src)));
            }
        }
    }
    let lookup = |name: &str| table.column_index(name);
    // Joint compilation enables cross-expression CSE (Q1's charge reuses
    // disc_price's result). Evaluation order is sums first, then MIN/MAX.
    let combined: Vec<&Expr> = sum_exprs_src.iter().chain(&mm_exprs_src).copied().collect();
    let mut resolved = crate::expr::resolve_many(&combined, &lookup)?;
    let mm_exprs = resolved.split_off(sum_exprs_src.len());
    let sum_exprs = resolved;
    let filter = query.filter.as_ref().map(|f| f.resolve(table)).transpose()?;

    let scan_opts = query.options.to_scan_options();
    let (mut merged, mut stats, mut profile) =
        scan_table(table, filter.as_ref(), &group_cols, &sum_exprs, &mm_exprs, &scan_opts)?;

    // The mutable region is processed row-at-a-time (§2.1: it is a small,
    // uncompressed fraction of recent rows).
    let mut tail_tracer = Tracer::new(query.options.profile, 0);
    let tail_start = tail_tracer.start();
    process_mutable_region(
        table,
        query,
        &group_cols,
        &sum_exprs_src,
        &mm_exprs_src,
        &mut merged,
        &mut stats,
    );
    // Close unconditionally: a zero-row tail still accounts its (tiny)
    // walk of the mutable region, and a conditionally-consumed span token
    // is exactly what the span-balance audit pass rejects.
    tail_tracer.span(Phase::MutableTail, SpanLoc::none(), stats.mutable_rows as u64, tail_start);
    profile.absorb(tail_tracer);

    let rows = merged
        .into_iter()
        .map(|(keys, acc)| ResultRow { keys, aggs: finish_aggs(&agg_plan, &acc) })
        .collect();
    Ok(QueryResult { group_columns: query.group_by.clone(), rows, stats, profile })
}

#[derive(Debug, Clone, Copy)]
enum AggPlan {
    Count,
    Sum(usize),
    Avg(usize),
    Min(usize),
    Max(usize),
}

fn finish_aggs(plan: &[AggPlan], acc: &GroupAcc) -> Vec<AggValue> {
    plan.iter()
        .map(|p| match p {
            AggPlan::Count => AggValue::Count(acc.count),
            AggPlan::Sum(i) => AggValue::Sum(acc.sums[*i]),
            AggPlan::Avg(i) => AggValue::Avg(acc.sums[*i] as f64 / acc.count.max(1) as f64),
            AggPlan::Min(i) => AggValue::Min(acc.mins[*i]),
            AggPlan::Max(i) => AggValue::Max(acc.maxs[*i]),
        })
        .collect()
}

fn check_expr_types(table: &Table, expr: &Expr) -> Result<()> {
    for name in expr.referenced_columns() {
        let idx =
            table.column_index(name).ok_or_else(|| EngineError::UnknownColumn(name.to_string()))?;
        if table.specs()[idx].ty == LogicalType::Str {
            return Err(EngineError::TypeMismatch {
                column: name.to_string(),
                detail: "cannot aggregate a string column".into(),
            });
        }
    }
    Ok(())
}

fn process_mutable_region(
    table: &Table,
    query: &Query,
    group_cols: &[(usize, LogicalType)],
    sum_exprs: &[&Expr],
    mm_exprs: &[&Expr],
    merged: &mut BTreeMap<Vec<Value>, GroupAcc>,
    stats: &mut ExecStats,
) {
    let rows = table.mutable_rows();
    if rows.is_empty() {
        return;
    }
    stats.mutable_rows = rows.len();
    for row in rows {
        let value_of =
            // PANIC: every referenced column resolved during plan validation.
            |name: &str| -> Value { row[table.column_index(name).expect("resolved")].clone() };
        if let Some(f) = &query.filter {
            if !f.eval_row(&value_of) {
                continue;
            }
        }
        let key: Vec<Value> = group_cols.iter().map(|&(idx, _)| row[idx].clone()).collect();
        let acc = merged.entry(key).or_insert_with(|| GroupAcc {
            count: 0,
            sums: vec![0; sum_exprs.len()],
            mins: vec![i64::MAX; mm_exprs.len()],
            maxs: vec![i64::MIN; mm_exprs.len()],
        });
        acc.count += 1;
        let eval = |e: &Expr| -> i64 {
            // PANIC: both expects repeat checks plan validation already made —
            // columns resolve, and aggregate inputs are integer-like.
            let resolved = e.resolve(&|n| table.column_index(n)).expect("resolved");
            // PANIC: aggregate inputs are integer-like per plan validation.
            resolved.eval_row(&|idx| row[idx].as_storage_i64().expect("integer-like"))
        };
        for (s, e) in acc.sums.iter_mut().zip(sum_exprs) {
            *s += eval(e);
        }
        for (j, e) in mm_exprs.iter().enumerate() {
            let v = eval(e);
            acc.mins[j] = acc.mins[j].min(v);
            acc.maxs[j] = acc.maxs[j].max(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bipie_columnstore::{ColumnSpec, TableBuilder};

    fn table() -> Table {
        let mut b = TableBuilder::with_segment_rows(
            vec![
                ColumnSpec::new("region", LogicalType::Str),
                ColumnSpec::new("sales", LogicalType::I64),
                ColumnSpec::new("cost", LogicalType::I64),
            ],
            500,
        );
        for i in 0..1000i64 {
            b.push_row(vec![
                Value::Str(["east", "north", "south", "west"][(i % 4) as usize].into()),
                Value::I64(i),
                Value::I64(i / 2),
            ]);
        }
        b.finish()
    }

    #[test]
    fn full_query_shape() {
        let t = table();
        let q = QueryBuilder::new()
            .filter(Predicate::ge("sales", Value::I64(500)))
            .group_by("region")
            .aggregate(AggExpr::count_star())
            .aggregate(AggExpr::sum("sales"))
            .aggregate(AggExpr::sum_expr(Expr::col("sales").sub(Expr::col("cost"))))
            .aggregate(AggExpr::avg("sales"))
            .build();
        let r = execute(&t, &q).unwrap();
        assert_eq!(r.num_rows(), 4);
        // Rows come back ordered by group key.
        let keys: Vec<String> = r.rows.iter().map(|row| row.keys[0].to_string()).collect();
        assert_eq!(keys, vec!["east", "north", "south", "west"]);
        // east = i % 4 == 0, i >= 500: 500, 504, ..., 996 -> 125 rows.
        let east = r.row_for(&[Value::Str("east".into())]).unwrap();
        assert_eq!(east.aggs[0], AggValue::Count(125));
        let expected_sum: i64 = (500..1000).filter(|i| i % 4 == 0).sum();
        assert_eq!(east.aggs[1], AggValue::Sum(expected_sum));
        let expected_diff: i64 = (500..1000).filter(|i| i % 4 == 0).map(|i| i - i / 2).sum();
        assert_eq!(east.aggs[2], AggValue::Sum(expected_diff));
        let avg = east.aggs[3].as_f64();
        assert!((avg - expected_sum as f64 / 125.0).abs() < 1e-9);
    }

    #[test]
    fn min_max_aggregates() {
        let t = table();
        let q = QueryBuilder::new()
            .filter(Predicate::ge("sales", Value::I64(100)))
            .group_by("region")
            .aggregate(AggExpr::min("sales"))
            .aggregate(AggExpr::max("sales"))
            .aggregate(AggExpr::max_expr(Expr::col("sales").sub(Expr::col("cost"))))
            .aggregate(AggExpr::count_star())
            .build();
        let r = execute(&t, &q).unwrap();
        assert_eq!(r.num_rows(), 4);
        // east = i % 4 == 0, i >= 100: min 100, max 996.
        let east = r.row_for(&[Value::Str("east".into())]).unwrap();
        assert_eq!(east.aggs[0], AggValue::Min(100));
        assert_eq!(east.aggs[1], AggValue::Max(996));
        // max(sales - cost) for east: max over i - i/2 = ceil(i/2) -> 498.
        assert_eq!(east.aggs[2], AggValue::Max(498));
        // north = i % 4 == 1: min 101, max 997.
        let north = r.row_for(&[Value::Str("north".into())]).unwrap();
        assert_eq!(north.aggs[0], AggValue::Min(101));
        assert_eq!(north.aggs[1], AggValue::Max(997));
    }

    #[test]
    fn min_max_identical_across_forced_strategies() {
        let t = table();
        let build = |opts: QueryOptions| {
            QueryBuilder::new()
                .filter(Predicate::lt("sales", Value::I64(700)))
                .group_by("region")
                .aggregate(AggExpr::min("sales"))
                .aggregate(AggExpr::max("cost"))
                .aggregate(AggExpr::sum("sales"))
                .options(opts)
                .build()
        };
        let baseline = execute(&t, &build(QueryOptions::default())).unwrap();
        for agg in AggStrategy::ALL {
            for sel in SelectionStrategy::ALL {
                let opts = QueryOptions {
                    forced_agg: Some(agg),
                    forced_selection: Some(sel),
                    ..Default::default()
                };
                let r = execute(&t, &build(opts)).unwrap();
                assert_eq!(r.rows, baseline.rows, "{agg:?}+{sel:?}");
            }
        }
    }

    #[test]
    fn mutable_region_rows_participate() {
        let mut b = TableBuilder::with_segment_rows(
            vec![ColumnSpec::new("g", LogicalType::Str), ColumnSpec::new("v", LogicalType::I64)],
            100,
        );
        for i in 0..150i64 {
            b.push_row(vec![Value::Str("x".into()), Value::I64(i)]);
        }
        let mut t = b.finish();
        // Insert into the mutable region without flushing.
        t.insert(vec![Value::Str("y".into()), Value::I64(1000)]);
        t.insert(vec![Value::Str("x".into()), Value::I64(2000)]);
        let q = QueryBuilder::new()
            .group_by("g")
            .aggregate(AggExpr::count_star())
            .aggregate(AggExpr::sum("v"))
            .build();
        let r = execute(&t, &q).unwrap();
        assert_eq!(r.stats.mutable_rows, 2);
        let x = r.row_for(&[Value::Str("x".into())]).unwrap();
        assert_eq!(x.aggs[0], AggValue::Count(151));
        assert_eq!(x.aggs[1], AggValue::Sum((0..150i64).sum::<i64>() + 2000));
        let y = r.row_for(&[Value::Str("y".into())]).unwrap();
        assert_eq!(y.aggs[0], AggValue::Count(1));
    }

    #[test]
    fn no_group_by_single_row() {
        let t = table();
        let q = QueryBuilder::new()
            .aggregate(AggExpr::count_star())
            .aggregate(AggExpr::sum("sales"))
            .build();
        let r = execute(&t, &q).unwrap();
        assert_eq!(r.num_rows(), 1);
        assert!(r.rows[0].keys.is_empty());
        assert_eq!(r.rows[0].aggs[0], AggValue::Count(1000));
        assert_eq!(r.rows[0].aggs[1], AggValue::Sum((0..1000).sum::<i64>()));
    }

    #[test]
    fn empty_result_when_filter_rejects_all() {
        let t = table();
        let q = QueryBuilder::new()
            .filter(Predicate::gt("sales", Value::I64(10_000)))
            .group_by("region")
            .aggregate(AggExpr::count_star())
            .build();
        let r = execute(&t, &q).unwrap();
        assert_eq!(r.num_rows(), 0);
        assert_eq!(r.stats.segments_eliminated, 2);
    }

    #[test]
    fn errors_propagate() {
        let t = table();
        let q = QueryBuilder::new().group_by("nope").aggregate(AggExpr::count_star()).build();
        assert!(matches!(execute(&t, &q), Err(EngineError::UnknownColumn(_))));
        let q = QueryBuilder::new().aggregate(AggExpr::sum("region")).build();
        assert!(matches!(execute(&t, &q), Err(EngineError::TypeMismatch { .. })));
    }

    #[test]
    fn invalid_options_fail_at_plan_time() {
        let t = table();
        for (opts, option) in [
            (QueryOptions { batch_rows: 0, ..Default::default() }, "batch_rows"),
            (QueryOptions { morsel_rows: 0, ..Default::default() }, "morsel_rows"),
            (QueryOptions { threads: Some(0), ..Default::default() }, "threads"),
            (
                QueryOptions { time_budget: Some(std::time::Duration::ZERO), ..Default::default() },
                "time_budget",
            ),
            (QueryOptions { mem_budget: Some(0), ..Default::default() }, "mem_budget"),
        ] {
            assert!(matches!(
                opts.validate(),
                Err(EngineError::InvalidOptions { option: o, .. }) if o == option
            ));
            let q = QueryBuilder::new().aggregate(AggExpr::count_star()).options(opts).build();
            assert!(matches!(
                execute(&t, &q),
                Err(EngineError::InvalidOptions { option: o, .. }) if o == option
            ));
        }
    }

    #[test]
    fn explicit_thread_counts_agree_with_serial() {
        let t = table();
        let build = |opts: QueryOptions| {
            QueryBuilder::new()
                .filter(Predicate::ge("sales", Value::I64(250)))
                .group_by("region")
                .aggregate(AggExpr::count_star())
                .aggregate(AggExpr::sum("sales"))
                .options(opts)
                .build()
        };
        let serial =
            execute(&t, &build(QueryOptions { parallel: false, ..Default::default() })).unwrap();
        for threads in [2usize, 4] {
            let opts = QueryOptions {
                threads: Some(threads),
                morsel_rows: 128,
                batch_rows: 64,
                ..Default::default()
            };
            let serial_small = execute(
                &t,
                &build(QueryOptions {
                    parallel: false,
                    morsel_rows: 128,
                    batch_rows: 64,
                    ..Default::default()
                }),
            )
            .unwrap();
            let par = execute(&t, &build(opts)).unwrap();
            assert_eq!(par.rows, serial.rows, "threads={threads}");
            assert_eq!(par.rows, serial_small.rows, "threads={threads} small batches");
            assert_eq!(par.stats.pool_workers, threads);
            assert!(par.stats.morsels_scanned > 0);
        }
    }

    #[test]
    fn anded_filters_compose() {
        let t = table();
        let q = QueryBuilder::new()
            .filter(Predicate::ge("sales", Value::I64(100)))
            .filter(Predicate::lt("sales", Value::I64(200)))
            .group_by("region")
            .aggregate(AggExpr::count_star())
            .build();
        let r = execute(&t, &q).unwrap();
        let total: u64 = r.rows.iter().map(|row| row.aggs[0].as_count().unwrap()).sum();
        assert_eq!(total, 100);
    }
}
