//! # BIPie engine
//!
//! The paper's primary contribution: a columnstore scan that fuses decoding,
//! filtering, group-id mapping, and grouped aggregation into one pass over
//! encoded data, *specializing* the selection and aggregation operators at
//! runtime (§3).
//!
//! Architecture (Figure 1), mapped to modules:
//!
//! * [`filter`] — evaluates the filter expression over a batch, directly on
//!   encoded data where possible, producing a selection byte vector merged
//!   with deleted-row information; also performs segment elimination from
//!   metadata.
//! * [`groupid`] — the **Group ID Mapper**: turns group-by columns into a
//!   dense integer group-id vector, exploiting dictionary codes as a
//!   perfect, collision-free hash (§3); falls back to a generic remap for
//!   wide group domains.
//! * [`aggproc`] — the **Aggregate Processor**: combines a group-id vector
//!   and selection vector with the aggregate inputs, executing one of the
//!   3 selection × 3 SIMD aggregation strategy pairings (plus the scalar
//!   fallback) chosen by [`strategy`].
//! * [`strategy`] — the runtime chooser: aggregation strategy per segment
//!   (from metadata: group-count bound, aggregate count and widths),
//!   selection strategy per batch (from the batch's measured selectivity),
//!   mirroring §3's "the choice ... can change from segment to segment /
//!   batch to batch".
//! * [`scan`] — drives morsel-driven scans over the segments (optionally in
//!   parallel) and merges per-worker group results in two phases.
//! * [`pool`] — the persistent worker pool backing parallel scans: spawned
//!   lazily on the first parallel query, reused by every later one.
//! * [`expr`] / [`query`] — the scalar expression interpreter (standing in
//!   for the paper's LLVM-generated code, which likewise "always operates
//!   on decompressed column data") and the public query API.
//! * [`trace`] — the opt-in query profiler: per-worker phase spans and
//!   strategy decision events, merged into a [`trace::QueryProfile`] with
//!   `EXPLAIN ANALYZE` and JSON renderers (DESIGN.md §9).
//! * [`governor`] — per-query resource governance: cooperative cancellation,
//!   wall-clock deadlines, and a memory accountant checked at every morsel
//!   claim and batch boundary (DESIGN.md §10).
//! * [`engine`] — the multi-query serving layer: a process-wide [`Engine`]
//!   handle with a shared table registry, bounded admission control with
//!   typed shedding, an aggregate memory accountant, and weighted tenant
//!   [`Session`]s interleaved fairly on the shared pool (DESIGN.md §15).
//! * [`mod@telemetry`] — the process-wide telemetry seam: every completed query
//!   publishes its stats/profile once into a registry of fleet counters and
//!   histograms plus a bounded cross-query decision log (DESIGN.md §14).
//! * [`mod@reference`] — a naive row-at-a-time executor used as the correctness
//!   oracle for the whole engine.

pub mod aggproc;
pub mod engine;
pub mod error;
pub mod expr;
pub mod filter;
pub mod governor;
pub mod groupid;
pub mod pool;
pub mod query;
pub mod reference;
pub mod scan;
pub mod stats;
pub mod strategy;
pub mod telemetry;
pub mod trace;

pub use engine::{Engine, EngineConfig, EnginePermit, EngineSnapshot, Session, SessionOptions};
pub use error::{AdmissionReason, EngineError, Result};
pub use expr::Expr;
pub use filter::Predicate;
pub use governor::{AggregateBudget, CancelToken};
pub use pool::{QueryTag, SchedStats};
pub use query::{execute, AggExpr, Query, QueryBuilder, QueryOptions, QueryResult, ResultRow};
pub use stats::ExecStats;
pub use strategy::{AggStrategy, SelectionStrategy};
pub use telemetry::{
    metrics_compiled_out, telemetry, DecisionLog, DecisionRecord, DecisionSummary, EngineTelemetry,
    DECISION_LOG_CAPACITY,
};
pub use trace::{
    Phase, PhaseTotals, ProfileLevel, QueryProfile, SpanLoc, TraceEvent, Tracer, WorkerRing,
};
