//! The columnstore scan driver (§3, Figure 1).
//!
//! Orchestrates per-segment execution: segment elimination, group-id mapper
//! planning, overflow proofs, adaptive strategy selection, the batch loop,
//! and the merge of per-segment group results into table-level totals.
//! Segments scan independently (optionally in parallel — "query 1 requires
//! little synchronization coming from parallel processing", §6.3); group
//! keys, not group ids, are the merge key, because dictionary codes differ
//! between segments.

use std::collections::BTreeMap;

use bipie_columnstore::encoding::EncodedColumn;
use bipie_columnstore::{BatchCursor, LogicalType, Segment, Table, Value};
use bipie_toolbox::selvec::count_selected;
use bipie_toolbox::SimdLevel;

use crate::aggproc::{AggInput, SegmentAggExecutor};
use crate::error::{EngineError, Result};
use crate::expr::ResolvedExpr;
use crate::filter::{FilterScratch, ResolvedPredicate};
use crate::groupid::{plan_segment_mapper, SegmentGroupMapper};
use crate::stats::ExecStats;
use crate::strategy::{AggChoiceParams, AggStrategy, SelectionStrategy, StrategyConfig};

/// Per-group accumulator in the merged result.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GroupAcc {
    /// Selected-row count.
    pub count: u64,
    /// One logical sum per sum-aggregate.
    pub sums: Vec<i64>,
    /// One logical minimum per MIN/MAX aggregate.
    pub mins: Vec<i64>,
    /// One logical maximum per MIN/MAX aggregate.
    pub maxs: Vec<i64>,
}

/// Execution-time options threaded down from the query API.
#[derive(Debug, Clone)]
pub struct ScanOptions {
    /// SIMD tier (defaults to the detected one).
    pub level: SimdLevel,
    /// Force a selection strategy for every batch (experiments).
    pub forced_selection: Option<SelectionStrategy>,
    /// Force an aggregation strategy for every segment (experiments).
    pub forced_agg: Option<AggStrategy>,
    /// Scan segments on parallel threads.
    pub parallel: bool,
    /// Rows per batch window (§2.1; default [`BATCH_ROWS`]).
    pub batch_rows: usize,
    /// Strategy-chooser constants.
    pub config: StrategyConfig,
}

impl Default for ScanOptions {
    fn default() -> Self {
        ScanOptions {
            level: SimdLevel::detect(),
            forced_selection: None,
            forced_agg: None,
            parallel: true,
            batch_rows: bipie_columnstore::BATCH_ROWS,
            config: StrategyConfig::default(),
        }
    }
}

/// Scan every segment of `table`, returning merged per-group totals keyed
/// by the group-by values, plus execution stats.
pub fn scan_table(
    table: &Table,
    filter: Option<&ResolvedPredicate>,
    group_cols: &[(usize, LogicalType)],
    sum_exprs: &[ResolvedExpr],
    mm_exprs: &[ResolvedExpr],
    options: &ScanOptions,
) -> Result<(BTreeMap<Vec<Value>, GroupAcc>, ExecStats)> {
    let segments = table.segments();
    let mut merged: BTreeMap<Vec<Value>, GroupAcc> = BTreeMap::new();
    let mut stats = ExecStats::default();

    let run = |seg: &Segment| scan_segment(seg, filter, group_cols, sum_exprs, mm_exprs, options);

    let results: Vec<Result<SegmentOutput>> = if options.parallel && segments.len() > 1 {
        std::thread::scope(|scope| {
            let handles: Vec<_> =
                segments.iter().map(|seg| scope.spawn(move || run(seg))).collect();
            handles.into_iter().map(|h| h.join().expect("segment scan panicked")).collect()
        })
    } else {
        segments.iter().map(run).collect()
    };

    for result in results {
        let out = result?;
        stats.merge(&out.stats);
        for (key, acc) in out.groups {
            let slot = merged.entry(key).or_insert_with(|| GroupAcc {
                count: 0,
                sums: vec![0; sum_exprs.len()],
                mins: vec![i64::MAX; mm_exprs.len()],
                maxs: vec![i64::MIN; mm_exprs.len()],
            });
            slot.count += acc.count;
            for (s, v) in slot.sums.iter_mut().zip(&acc.sums) {
                *s += v;
            }
            for (m, v) in slot.mins.iter_mut().zip(&acc.mins) {
                *m = (*m).min(*v);
            }
            for (m, v) in slot.maxs.iter_mut().zip(&acc.maxs) {
                *m = (*m).max(*v);
            }
        }
    }
    Ok((merged, stats))
}

struct SegmentOutput {
    groups: Vec<(Vec<Value>, GroupAcc)>,
    stats: ExecStats,
}

fn scan_segment(
    seg: &Segment,
    filter: Option<&ResolvedPredicate>,
    group_cols: &[(usize, LogicalType)],
    sum_exprs: &[ResolvedExpr],
    mm_exprs: &[ResolvedExpr],
    options: &ScanOptions,
) -> Result<SegmentOutput> {
    let mut stats = ExecStats::default();
    if seg.num_rows() == 0 || seg.live_rows() == 0 {
        return Ok(SegmentOutput { groups: Vec::new(), stats });
    }
    if let Some(f) = filter {
        if f.eliminates_segment(seg) {
            stats.segments_eliminated = 1;
            return Ok(SegmentOutput { groups: Vec::new(), stats });
        }
    }
    stats.segments_scanned = 1;
    stats.rows_scanned = seg.live_rows();

    check_overflow(seg, sum_exprs)?;
    // MIN/MAX never accumulate, but the expression itself must fit i64.
    for (i, expr) in mm_exprs.iter().enumerate() {
        let (lo, hi) = expr.value_range(&|col| {
            let m = seg.meta(col);
            (m.min, m.max)
        });
        if lo < i64::MIN as i128 || hi > i64::MAX as i128 {
            return Err(EngineError::PotentialOverflow { aggregate: sum_exprs.len() + i });
        }
    }

    match plan_segment_mapper(seg, group_cols)? {
        SegmentGroupMapper::Narrow(mapper) => {
            scan_segment_narrow(seg, filter, sum_exprs, mm_exprs, &mapper, options, &mut stats)
        }
        SegmentGroupMapper::Wide(mapper) => {
            stats.wide_group_segments = 1;
            scan_segment_wide(seg, filter, sum_exprs, mm_exprs, mapper, options, &mut stats)
        }
    }
}

/// Metadata-driven overflow proof (§2.1): every sum over the segment must
/// fit `i64`.
fn check_overflow(seg: &Segment, sum_exprs: &[ResolvedExpr]) -> Result<()> {
    let rows = seg.num_rows() as i128;
    for (i, expr) in sum_exprs.iter().enumerate() {
        let (lo, hi) = expr.value_range(&|col| {
            let m = seg.meta(col);
            (m.min, m.max)
        });
        let bound = lo.abs().max(hi.abs());
        if bound.saturating_mul(rows) > i64::MAX as i128 {
            return Err(EngineError::PotentialOverflow { aggregate: i });
        }
    }
    Ok(())
}

/// The BIPie fast path: u8 group ids, specialized kernels.
fn scan_segment_narrow(
    seg: &Segment,
    filter: Option<&ResolvedPredicate>,
    sum_exprs: &[ResolvedExpr],
    mm_exprs: &[ResolvedExpr],
    mapper: &crate::groupid::NarrowMapper<'_>,
    options: &ScanOptions,
    stats: &mut ExecStats,
) -> Result<SegmentOutput> {
    let level = options.level;
    let num_groups = mapper.num_groups();

    // Plan the aggregate inputs: bare bit-packed columns feed kernels in
    // their encoded form; everything else evaluates as an expression.
    let plan_input = |e: &ResolvedExpr| match e.as_bare_column() {
        Some(col) => match seg.column(col) {
            EncodedColumn::BitPack(c) => AggInput::Packed(c),
            _ => AggInput::Computed(e.clone()),
        },
        None => AggInput::Computed(e.clone()),
    };
    let inputs: Vec<AggInput<'_>> = sum_exprs.iter().map(plan_input).collect();
    let mm_inputs: Vec<AggInput<'_>> = mm_exprs.iter().map(plan_input).collect();

    // The bit width driving the gather/compact crossover: widest packed
    // aggregate input, else the group-code width.
    let dominant_bits = inputs
        .iter()
        .filter_map(|i| match i {
            AggInput::Packed(c) => Some(c.bits()),
            AggInput::Computed(_) => None,
        })
        .max()
        .unwrap_or_else(|| mapper.code_bits());

    let agg_params_template = AggChoiceParams {
        num_groups_effective: num_groups + 1,
        num_sums: inputs.len(),
        input_bytes: inputs.iter().map(AggInput::width_bytes).collect(),
        all_packed_narrow: !inputs.is_empty() && inputs.iter().all(AggInput::sortable_packed),
        multi_layout_fits: bipie_toolbox::agg::multi::RowLayout::plan(
            &inputs.iter().map(AggInput::width_bytes).collect::<Vec<_>>(),
        )
        .is_some(),
        est_selectivity: 1.0,
    };

    let mut executor: Option<SegmentAggExecutor<'_>> = None;
    let mut inputs_slot = inputs;
    let mut mm_inputs_slot = mm_inputs;
    let mut gids: Vec<u8> = Vec::new();
    let mut gid_scratch: Vec<u8> = Vec::new();
    let mut fscratch = FilterScratch::default();
    let mut sel_buf: Vec<u8> = Vec::new();
    let has_deletes = !seg.deleted().none_deleted();

    for batch in BatchCursor::with_batch_rows(seg.num_rows(), options.batch_rows) {
        mapper.extract_batch(batch.start, batch.len, &mut gids, &mut gid_scratch, level);

        // Filter + deleted-row merge -> selection byte vector.
        let sel: Option<&[u8]> = if filter.is_some() || has_deletes {
            sel_buf.resize(batch.len, 0xFF);
            match filter {
                // The comparison writes every byte; no prefill needed.
                Some(f) => f.eval_batch(seg, batch.start, &mut sel_buf, &mut fscratch, level),
                None => sel_buf.fill(0xFF),
            }
            seg.deleted().mask_batch(batch.start, &mut sel_buf);
            Some(&sel_buf)
        } else {
            None
        };

        // Lazily pick the aggregation strategy from the first batch's
        // measured selectivity (§3: per segment, at run time).
        let selectivity = match sel {
            Some(s) => count_selected(s, level) as f64 / batch.len.max(1) as f64,
            None => 1.0,
        };
        if executor.is_none() {
            let mut params = agg_params_template.clone();
            params.est_selectivity = selectivity;
            let strategy = options.forced_agg.unwrap_or_else(|| options.config.choose_agg(&params));
            stats.record_agg(strategy);
            executor = Some(SegmentAggExecutor::with_min_max(
                strategy,
                num_groups,
                std::mem::take(&mut inputs_slot),
                std::mem::take(&mut mm_inputs_slot),
                level,
            ));
        }
        let exec = executor.as_mut().expect("created above");

        let selection = options
            .forced_selection
            .unwrap_or_else(|| options.config.choose_selection(selectivity, dominant_bits));
        stats.record_selection(selection);
        exec.process_batch(seg, batch.start, batch.len, &mut gids, sel, selection);
    }

    let groups = match executor {
        Some(exec) => {
            let result = exec.finish();
            (0..num_groups)
                .filter(|&g| result.counts[g] > 0)
                .map(|g| {
                    (
                        mapper.group_key(g),
                        GroupAcc {
                            count: result.counts[g],
                            sums: result.sums.iter().map(|s| s[g]).collect(),
                            mins: result.mins.iter().map(|m| m[g]).collect(),
                            maxs: result.maxs.iter().map(|m| m[g]).collect(),
                        },
                    )
                })
                .collect()
        }
        None => Vec::new(),
    };
    Ok(SegmentOutput { groups, stats: std::mem::take(stats) })
}

/// Wide-group fallback: u32 group ids, scalar row loop.
fn scan_segment_wide(
    seg: &Segment,
    filter: Option<&ResolvedPredicate>,
    sum_exprs: &[ResolvedExpr],
    mm_exprs: &[ResolvedExpr],
    mut mapper: crate::groupid::WideMapper<'_>,
    options: &ScanOptions,
    stats: &mut ExecStats,
) -> Result<SegmentOutput> {
    let level = options.level;
    let mut counts: Vec<u64> = Vec::new();
    let mut sums: Vec<Vec<i64>> = vec![Vec::new(); sum_exprs.len()];
    let mut mins: Vec<Vec<i64>> = vec![Vec::new(); mm_exprs.len()];
    let mut maxs: Vec<Vec<i64>> = vec![Vec::new(); mm_exprs.len()];
    let mut gids: Vec<u32> = Vec::new();
    let mut key_scratch: Vec<Vec<i64>> = Vec::new();
    let mut fscratch = FilterScratch::default();
    let mut sel_buf: Vec<u8> = Vec::new();
    let mut col_cache: Vec<(usize, Vec<i64>)> = Vec::new();
    // Combined expression list: sums first, then MIN/MAX (the CSE
    // compilation order of `resolve_many`).
    let all_exprs: Vec<&ResolvedExpr> = sum_exprs.iter().chain(mm_exprs).collect();
    let mut expr_vals: Vec<Vec<i64>> = vec![Vec::new(); all_exprs.len()];
    let mut expr_scratch = crate::expr::ExprScratch::default();
    let has_deletes = !seg.deleted().none_deleted();

    for batch in BatchCursor::with_batch_rows(seg.num_rows(), options.batch_rows) {
        stats.record_selection(SelectionStrategy::Compact);
        mapper.extract_batch(batch.start, batch.len, &mut gids, &mut key_scratch);

        let sel: Option<&[u8]> = if filter.is_some() || has_deletes {
            sel_buf.clear();
            sel_buf.resize(batch.len, 0xFF);
            if let Some(f) = filter {
                f.eval_batch(seg, batch.start, &mut sel_buf, &mut fscratch, level);
            }
            seg.deleted().mask_batch(batch.start, &mut sel_buf);
            Some(&sel_buf)
        } else {
            None
        };

        // Decode expression inputs over the full batch.
        let mut needed: Vec<usize> = Vec::new();
        for e in &all_exprs {
            for c in e.columns() {
                if !needed.contains(&c) {
                    needed.push(c);
                }
            }
        }
        col_cache.retain(|(c, _)| needed.contains(c));
        for &c in &needed {
            if !col_cache.iter().any(|(cc, _)| *cc == c) {
                col_cache.push((c, Vec::new()));
            }
        }
        for (c, buf) in col_cache.iter_mut() {
            buf.clear();
            buf.resize(batch.len, 0);
            seg.column(*c).decode_i64_into(batch.start, buf);
        }
        {
            let cache = &col_cache;
            let lookup = |idx: usize| -> &[i64] {
                cache.iter().find(|(c, _)| *c == idx).map(|(_, v)| v.as_slice()).unwrap()
            };
            for (i, e) in all_exprs.iter().enumerate() {
                let (done, rest) = expr_vals.split_at_mut(i);
                let prev = |p: usize| -> &[i64] { &done[p] };
                e.eval_batch_with_prev(batch.len, &lookup, &prev, &mut rest[0], &mut expr_scratch);
            }
        }

        // Scalar accumulation.
        for i in 0..batch.len {
            if let Some(s) = sel {
                if s[i] == 0 {
                    continue;
                }
            }
            let g = gids[i] as usize;
            if g >= counts.len() {
                counts.resize(g + 1, 0);
                for s in sums.iter_mut() {
                    s.resize(g + 1, 0);
                }
                for m in mins.iter_mut() {
                    m.resize(g + 1, i64::MAX);
                }
                for m in maxs.iter_mut() {
                    m.resize(g + 1, i64::MIN);
                }
            }
            counts[g] += 1;
            for (s, vals) in sums.iter_mut().zip(&expr_vals) {
                s[g] += vals[i];
            }
            for (j, vals) in expr_vals[sum_exprs.len()..].iter().enumerate() {
                mins[j][g] = mins[j][g].min(vals[i]);
                maxs[j][g] = maxs[j][g].max(vals[i]);
            }
        }
    }
    stats.record_agg(AggStrategy::Scalar);

    let groups = (0..counts.len())
        .filter(|&g| counts[g] > 0)
        .map(|g| {
            (
                mapper.group_key(g),
                GroupAcc {
                    count: counts[g],
                    sums: sums.iter().map(|s| s[g]).collect(),
                    mins: mins.iter().map(|m| m[g]).collect(),
                    maxs: maxs.iter().map(|m| m[g]).collect(),
                },
            )
        })
        .collect();
    Ok(SegmentOutput { groups, stats: std::mem::take(stats) })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::filter::Predicate;
    use bipie_columnstore::{ColumnSpec, TableBuilder};

    fn table(rows: usize, segment_rows: usize) -> Table {
        let mut b = TableBuilder::with_segment_rows(
            vec![ColumnSpec::new("flag", LogicalType::Str), ColumnSpec::new("v", LogicalType::I64)],
            segment_rows,
        );
        for i in 0..rows as i64 {
            b.push_row(vec![Value::Str(["A", "N", "R"][(i % 3) as usize].into()), Value::I64(i)]);
        }
        b.finish()
    }

    fn v_expr(t: &Table) -> ResolvedExpr {
        Expr::col("v").resolve(&|n| t.column_index(n)).unwrap()
    }

    #[test]
    fn multi_segment_merge() {
        let t = table(1000, 300); // 4 segments
        let expr = v_expr(&t);
        let (groups, stats) =
            scan_table(&t, None, &[(0, LogicalType::Str)], &[expr], &[], &ScanOptions::default())
                .unwrap();
        assert_eq!(stats.segments_scanned, 4);
        assert_eq!(groups.len(), 3);
        let total: u64 = groups.values().map(|g| g.count).sum();
        assert_eq!(total, 1000);
        let sum: i64 = groups.values().map(|g| g.sums[0]).sum();
        assert_eq!(sum, (0..1000).sum::<i64>());
        // Per-group check against the construction.
        let a = &groups[&vec![Value::Str("A".into())]];
        assert_eq!(a.count, 334);
        assert_eq!(a.sums[0], (0..1000i64).filter(|i| i % 3 == 0).sum::<i64>());
    }

    #[test]
    fn filter_and_elimination() {
        let t = table(1000, 250); // segments cover v ranges [0,250) ...
        let expr = v_expr(&t);
        let pred = Predicate::lt("v", Value::I64(100)).resolve(&t).unwrap();
        let (groups, stats) = scan_table(
            &t,
            Some(&pred),
            &[(0, LogicalType::Str)],
            &[expr],
            &[],
            &ScanOptions::default(),
        )
        .unwrap();
        assert_eq!(stats.segments_eliminated, 3);
        assert_eq!(stats.segments_scanned, 1);
        let total: u64 = groups.values().map(|g| g.count).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn deleted_rows_are_skipped() {
        let mut t = table(300, 1000);
        t.segment_mut(0).delete_row(0);
        t.segment_mut(0).delete_row(1);
        let expr = v_expr(&t);
        let (groups, _) =
            scan_table(&t, None, &[(0, LogicalType::Str)], &[expr], &[], &ScanOptions::default())
                .unwrap();
        let total: u64 = groups.values().map(|g| g.count).sum();
        assert_eq!(total, 298);
        let sum: i64 = groups.values().map(|g| g.sums[0]).sum();
        assert_eq!(sum, (2..300).sum::<i64>());
    }

    #[test]
    fn overflow_detected() {
        let mut b =
            TableBuilder::with_segment_rows(vec![ColumnSpec::new("v", LogicalType::I64)], 1000);
        for _ in 0..10 {
            b.push_row(vec![Value::I64(i64::MAX / 4)]);
        }
        let t = b.finish();
        let expr = Expr::col("v").mul(Expr::col("v")).resolve(&|n| t.column_index(n)).unwrap();
        let err = scan_table(&t, None, &[], &[expr], &[], &ScanOptions::default()).unwrap_err();
        assert!(matches!(err, EngineError::PotentialOverflow { aggregate: 0 }));
    }

    #[test]
    fn forced_strategies_give_identical_results() {
        let t = table(5000, 1300);
        let expr = v_expr(&t);
        let pred = Predicate::ge("v", Value::I64(500)).resolve(&t).unwrap();
        let baseline = scan_table(
            &t,
            Some(&pred),
            &[(0, LogicalType::Str)],
            std::slice::from_ref(&expr),
            &[],
            &ScanOptions::default(),
        )
        .unwrap()
        .0;
        for agg in AggStrategy::ALL {
            for selection in SelectionStrategy::ALL {
                let opts = ScanOptions {
                    forced_agg: Some(agg),
                    forced_selection: Some(selection),
                    ..Default::default()
                };
                let (groups, stats) = scan_table(
                    &t,
                    Some(&pred),
                    &[(0, LogicalType::Str)],
                    std::slice::from_ref(&expr),
                    &[],
                    &opts,
                )
                .unwrap();
                assert_eq!(groups, baseline, "{agg:?}+{selection:?}");
                assert!(stats.agg_count(agg) > 0);
                assert!(stats.selection_count(selection) > 0);
            }
        }
    }
}
