//! The columnstore scan driver (§3, Figure 1; parallelism in DESIGN.md §8).
//!
//! Orchestrates execution: segment elimination, group-id mapper planning,
//! overflow proofs, adaptive strategy selection, the batch loop, and the
//! merge of per-segment group results into table-level totals. Group keys,
//! not group ids, are the merge key, because dictionary codes differ
//! between segments.
//!
//! Parallel scans are *morsel-driven* ("query 1 requires little
//! synchronization coming from parallel processing", §6.3): segments are
//! decomposed into batch-aligned row ranges claimed from atomic cursors by
//! a persistent worker pool ([`crate::pool`]), so a single hot segment, a
//! table with fewer segments than cores, or skewed segment sizes still
//! scale. Each worker aggregates into thread-local accumulators; the final
//! reduction is partitioned by group-key hash and merged in parallel.

use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Mutex, PoisonError};

use bipie_columnstore::encoding::{EncodedColumn, RleColumn};
use bipie_columnstore::{Batch, BatchCursor, LogicalType, MorselCursor, Segment, Table, Value};
use bipie_toolbox::selvec::count_selected;
use bipie_toolbox::{RunSpanVec, SimdLevel};

use crate::aggproc::{AggInput, RunWiseExec, SegmentAggExecutor};
use crate::error::{EngineError, Result};
use crate::expr::ResolvedExpr;
use crate::filter::{span_runs_fraction, FilterScratch, ResolvedPredicate};
use crate::governor::{CancelToken, Governor, MemScope};
use crate::groupid::{plan_segment_mapper, NarrowMapper, SegmentGroupMapper, WideMapper};
use crate::pool::{panic_message, QueryTag, WorkerPool};
use crate::stats::ExecStats;
use crate::strategy::{AggChoiceParams, AggStrategy, SelectionStrategy, StrategyConfig};
use crate::trace::{Phase, ProfileLevel, QueryProfile, SpanLoc, Tracer, NO_ID};

/// Per-group accumulator in the merged result.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GroupAcc {
    /// Selected-row count.
    pub count: u64,
    /// One logical sum per sum-aggregate.
    pub sums: Vec<i64>,
    /// One logical minimum per MIN/MAX aggregate.
    pub mins: Vec<i64>,
    /// One logical maximum per MIN/MAX aggregate.
    pub maxs: Vec<i64>,
}

impl GroupAcc {
    /// Fold `other` into `self` (same aggregate arity).
    fn absorb(&mut self, other: &GroupAcc) {
        self.count += other.count;
        for (s, v) in self.sums.iter_mut().zip(&other.sums) {
            *s += v;
        }
        for (m, v) in self.mins.iter_mut().zip(&other.mins) {
            *m = (*m).min(*v);
        }
        for (m, v) in self.maxs.iter_mut().zip(&other.maxs) {
            *m = (*m).max(*v);
        }
    }
}

/// Execution-time options threaded down from the query API.
#[derive(Debug, Clone)]
pub struct ScanOptions {
    /// SIMD tier (defaults to the detected one).
    pub level: SimdLevel,
    /// Force a selection strategy for every batch (experiments).
    pub forced_selection: Option<SelectionStrategy>,
    /// Force an aggregation strategy for every segment (experiments).
    pub forced_agg: Option<AggStrategy>,
    /// Scan morsels on parallel pool workers.
    pub parallel: bool,
    /// Worker count for parallel scans (`None` = hardware parallelism).
    pub threads: Option<usize>,
    /// Rows per batch window (§2.1; default [`bipie_columnstore::BATCH_ROWS`]).
    pub batch_rows: usize,
    /// Rows per parallel morsel (rounded up to a whole number of batch
    /// windows; default [`bipie_columnstore::MORSEL_ROWS`]).
    pub morsel_rows: usize,
    /// Strategy-chooser constants.
    pub config: StrategyConfig,
    /// Profiling level ([`ProfileLevel::Off`] keeps the hot loop free of
    /// timestamps and event stores).
    pub profile: ProfileLevel,
    /// Cooperative cancellation token, observed at every morsel claim and
    /// batch boundary (DESIGN.md §10).
    pub cancel: Option<CancelToken>,
    /// Wall-clock budget; exceeding it fails the query with
    /// [`EngineError::DeadlineExceeded`]. Must be non-zero.
    pub time_budget: Option<std::time::Duration>,
    /// Byte budget for scan-owned allocations (accumulators, wide-group
    /// hash tables, selection vectors, unpack buffers); exceeding it fails
    /// with [`EngineError::MemoryBudgetExceeded`]. Must be non-zero.
    pub mem_budget: Option<usize>,
    /// Shared-scheduler identity: which per-query pool queue this scan's
    /// fork-join work lands in and its fair-share weight. Set by the
    /// [`Engine`](crate::engine::Engine); standalone scans use the default
    /// untagged queue.
    pub tag: QueryTag,
}

impl Default for ScanOptions {
    fn default() -> Self {
        ScanOptions {
            level: SimdLevel::detect(),
            forced_selection: None,
            forced_agg: None,
            parallel: true,
            threads: None,
            batch_rows: bipie_columnstore::BATCH_ROWS,
            morsel_rows: bipie_columnstore::MORSEL_ROWS,
            config: StrategyConfig::default(),
            profile: ProfileLevel::Off,
            cancel: None,
            time_budget: None,
            mem_budget: None,
            tag: QueryTag::default(),
        }
    }
}

/// Reject out-of-domain execution options with a typed error before any
/// scanning starts (instead of a deep assertion failure mid-scan).
pub fn validate_scan_options(options: &ScanOptions) -> Result<()> {
    if options.batch_rows == 0 {
        return Err(EngineError::InvalidOptions {
            option: "batch_rows",
            detail: "batch windows must cover at least 1 row".into(),
        });
    }
    if options.morsel_rows == 0 {
        return Err(EngineError::InvalidOptions {
            option: "morsel_rows",
            detail: "morsels must cover at least 1 row".into(),
        });
    }
    if options.threads == Some(0) {
        return Err(EngineError::InvalidOptions {
            option: "threads",
            detail: "need at least 1 worker (use None for hardware parallelism)".into(),
        });
    }
    if options.time_budget == Some(std::time::Duration::ZERO) {
        return Err(EngineError::InvalidOptions {
            option: "time_budget",
            detail: "a zero deadline can never be met (use None for no limit)".into(),
        });
    }
    if options.mem_budget == Some(0) {
        return Err(EngineError::InvalidOptions {
            option: "mem_budget",
            detail: "a zero byte budget admits no allocation (use None for no limit)".into(),
        });
    }
    Ok(())
}

/// Group-count threshold below which the second merge phase is not worth a
/// fork-join region (the serial fold touches each key once anyway).
const PARALLEL_MERGE_MIN_GROUPS: usize = 128;

/// Merged per-group totals, ordered by group-by key values.
type GroupMap = BTreeMap<Vec<Value>, GroupAcc>;

/// Scan every segment of `table`, returning merged per-group totals keyed
/// by the group-by values, plus execution stats and the (possibly empty)
/// query profile.
pub fn scan_table(
    table: &Table,
    filter: Option<&ResolvedPredicate>,
    group_cols: &[(usize, LogicalType)],
    sum_exprs: &[ResolvedExpr],
    mm_exprs: &[ResolvedExpr],
    options: &ScanOptions,
) -> Result<(GroupMap, ExecStats, QueryProfile)> {
    validate_scan_options(options)?;
    let mut stats = ExecStats::default();
    let mut profile = QueryProfile::new(options.profile);
    // The coordinator's own tracer covers the phases that run on the
    // calling thread: admission planning and the phase-2 merge.
    let mut coord = Tracer::new(options.profile, 0);

    // The per-query governor: the deadline clock starts here, at scan
    // admission. A query launched with an already-cancelled token fails
    // before any segment is planned — no partial result.
    let governor = Governor::new(options.cancel.clone(), options.time_budget, options.mem_budget);
    if governor.active() {
        stats.governor_checks += 1;
        governor.check()?;
    }

    // Admission planning runs once per segment, serially: it is metadata
    // only (elimination, overflow proofs, mapper viability) and it lets
    // errors surface deterministically before any worker starts. The table
    // segment ordinal rides along as the id trace events carry.
    let plan_start = coord.start();
    let planned =
        plan_segments(table, filter, group_cols, sum_exprs, mm_exprs, &governor, &mut stats);
    // Close on the planning *result*: a plan-time error (overflow proof,
    // budget rejection) must not drop the `Phase::Plan` span.
    coord.span(Phase::Plan, SpanLoc::none(), stats.rows_scanned as u64, plan_start);
    let planned = planned?;
    if planned.is_empty() {
        profile.absorb(coord);
        return Ok((BTreeMap::new(), stats, profile));
    }

    let threads = options
        .threads
        .unwrap_or_else(|| std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1));
    let ctx = ScanCtx { filter, group_cols, sum_exprs, mm_exprs, options, governor: &governor };

    let merged = if options.parallel && threads > 1 {
        scan_parallel(&planned, threads, &ctx, &mut stats, &mut profile, &mut coord)?
    } else {
        scan_serial(&planned, &ctx, &mut stats, &mut coord)?
    };
    stats.mem_reserved_peak = governor.peak_reserved();
    profile.absorb(coord);
    Ok((merged, stats, profile))
}

/// Admission planning for [`scan_table`]: walk the segments once, skipping
/// empty and filter-eliminated ones, proving overflow/min-max safety, and
/// admitting wide-group projections against the memory budget. Split out so
/// the coordinator can bracket exactly this fallible region with the
/// [`Phase::Plan`] span — the span closes on the planning result before any
/// error propagates.
fn plan_segments<'t>(
    table: &'t Table,
    filter: Option<&ResolvedPredicate>,
    group_cols: &[(usize, LogicalType)],
    sum_exprs: &[ResolvedExpr],
    mm_exprs: &[ResolvedExpr],
    governor: &Governor,
    stats: &mut ExecStats,
) -> Result<Vec<(u32, &'t Segment)>> {
    let mut planned: Vec<(u32, &Segment)> = Vec::new();
    for (seg_index, seg) in table.segments().iter().enumerate() {
        if seg.num_rows() == 0 || seg.live_rows() == 0 {
            continue;
        }
        if let Some(f) = filter {
            if f.eliminates_segment(seg) {
                stats.segments_eliminated += 1;
                continue;
            }
        }
        check_overflow(seg, sum_exprs)?;
        check_minmax_range(seg, sum_exprs.len(), mm_exprs)?;
        if matches!(plan_segment_mapper(seg, group_cols)?, SegmentGroupMapper::Wide(_)) {
            stats.wide_group_segments += 1;
            // The wide path cannot degrade (its group domain is structurally
            // too wide for the narrow accumulators — the budgeted strategy
            // ladder only applies on the narrow path), so a budget that its
            // projected hash table cannot fit fails here, at plan time.
            if governor.accounts_memory() {
                stats.governor_checks += 1;
                governor.admit_projection(projected_wide_bytes(
                    seg,
                    group_cols,
                    sum_exprs.len(),
                    mm_exprs.len(),
                ))?;
            }
        }
        stats.segments_scanned += 1;
        stats.rows_scanned += seg.live_rows();
        stats.bytes_scanned += seg.encoded_bytes();
        planned.push((seg_index as u32, seg));
    }
    Ok(planned)
}

/// Everything a worker needs to scan a segment, bundled for passing around.
#[derive(Clone, Copy)]
struct ScanCtx<'a> {
    filter: Option<&'a ResolvedPredicate>,
    group_cols: &'a [(usize, LogicalType)],
    sum_exprs: &'a [ResolvedExpr],
    mm_exprs: &'a [ResolvedExpr],
    options: &'a ScanOptions,
    governor: &'a Governor,
}

/// Serial fallback: one thread scans whole segments in order. Panics from
/// a poisoned segment scan become [`EngineError::WorkerPanicked`], matching
/// the parallel path's contract. Each segment records a single
/// [`Phase::SegmentScan`] span (no morsel decomposition).
fn scan_serial(
    planned: &[(u32, &Segment)],
    ctx: &ScanCtx<'_>,
    stats: &mut ExecStats,
    tracer: &mut Tracer,
) -> Result<GroupMap> {
    let mut merged: GroupMap = BTreeMap::new();
    let mut local = ExecStats::default();
    let scan_all = AssertUnwindSafe(|| -> Result<()> {
        for &(seg_index, seg) in planned {
            let mut scan = SegScan::plan(seg_index, seg, ctx)?;
            scan.process_range(0, seg.num_rows(), NO_ID, false, tracer)?;
            let (groups, seg_stats) = scan.finish();
            local.merge(&seg_stats);
            merge_groups(&mut merged, groups);
        }
        Ok(())
    });
    match catch_unwind(scan_all) {
        Ok(result) => result?,
        Err(payload) => {
            return Err(EngineError::WorkerPanicked { detail: panic_message(&payload) })
        }
    }
    stats.merge(&local);
    Ok(merged)
}

/// Morsel-driven parallel scan with a two-phase parallel merge.
fn scan_parallel(
    planned: &[(u32, &Segment)],
    threads: usize,
    ctx: &ScanCtx<'_>,
    stats: &mut ExecStats,
    profile: &mut QueryProfile,
    coord: &mut Tracer,
) -> Result<GroupMap> {
    let batch_rows = ctx.options.batch_rows;
    // Morsels are whole batch windows so the parallel batch grid matches
    // the serial one exactly.
    let morsel_rows = ctx.options.morsel_rows.div_ceil(batch_rows).max(1) * batch_rows;
    let sched = MorselScheduler::new(planned, morsel_rows);

    // Phase 1: workers claim morsels, aggregate into thread-local state,
    // and leave their results pre-partitioned by group-key hash. Each
    // worker owns a private tracer for the duration (no shared state in
    // the hot loop) and parks it in its slot at the end.
    let worker_parts: Vec<Mutex<Vec<GroupMap>>> =
        (0..threads).map(|_| Mutex::new(Vec::new())).collect();
    let worker_stats: Vec<Mutex<ExecStats>> =
        (0..threads).map(|_| Mutex::new(ExecStats::default())).collect();
    let worker_tracers: Vec<Mutex<Option<Tracer>>> =
        (0..threads).map(|_| Mutex::new(None)).collect();
    let first_error: Mutex<Option<EngineError>> = Mutex::new(None);
    let level = ctx.options.profile;

    let pool = WorkerPool::global();
    let report = pool
        .run_tagged(ctx.options.tag, threads, &|w| {
            let mut local = ExecStats::default();
            let mut tracer = Tracer::new(level, w as u32);
            let mut states: HashMap<usize, SegScan<'_>> = HashMap::new();
            let mut last: Option<usize> = None;
            let governor = ctx.governor;
            while let Some(claim) = sched.claim(w, threads, &mut last) {
                // The morsel-claim checkpoint: a tripped governor stops
                // this worker within one morsel's worth of work, and
                // closing the scheduler drains every remaining claim so
                // siblings park promptly too. The pool joins normally —
                // nothing is poisoned.
                if governor.active() {
                    local.governor_checks += 1;
                    if let Err(e) = governor.check() {
                        // LOCK: `first_error` leaf; temp guard dies at `;`.
                        lock(&first_error).get_or_insert(e);
                        sched.close();
                        return;
                    }
                }
                local.morsels_scanned += 1;
                local.morsel_steals += claim.stolen as usize;
                let scan = match states.entry(claim.seg) {
                    std::collections::hash_map::Entry::Occupied(o) => o.into_mut(),
                    std::collections::hash_map::Entry::Vacant(v) => {
                        let (seg_index, seg) = planned[claim.seg];
                        match SegScan::plan(seg_index, seg, ctx) {
                            Ok(s) => v.insert(s),
                            Err(e) => {
                                // LOCK: `first_error` leaf; dies at `;`.
                                lock(&first_error).get_or_insert(e);
                                sched.close();
                                return;
                            }
                        }
                    }
                };
                if let Err(e) = scan.process_range(
                    claim.range.start,
                    claim.range.len,
                    claim.morsel as u32,
                    claim.stolen,
                    &mut tracer,
                ) {
                    // LOCK: `first_error` leaf; temp guard dies at `;`.
                    lock(&first_error).get_or_insert(e);
                    sched.close();
                    return;
                }
            }
            let mut parts: Vec<GroupMap> = (0..threads).map(|_| BTreeMap::new()).collect();
            for (_, scan) in states {
                let (groups, seg_stats) = scan.finish();
                local.merge(&seg_stats);
                for (key, acc) in groups {
                    let p = (key_hash(&key) % threads as u64) as usize;
                    merge_one(&mut parts[p], key, acc);
                }
            }
            *lock(&worker_parts[w]) = parts; // LOCK: own slot `w`; dies at `;`.
            *lock(&worker_stats[w]) = local; // LOCK: own slot `w`; dies at `;`.
            *lock(&worker_tracers[w]) = Some(tracer); // LOCK: own slot `w`; dies at `;`.
        })
        .map_err(|payload| EngineError::WorkerPanicked { detail: panic_message(&payload) })?;
    // LOCK: `first_error` leaf, read after the pool join; dies at `;`.
    if let Some(e) = lock(&first_error).take() {
        return Err(e);
    }
    for ws in &worker_stats {
        // LOCK: worker slot read after the join; temp guard dies at `;`.
        stats.merge(&lock(ws));
    }
    for wt in &worker_tracers {
        // LOCK: worker slot drained after the join; temp guard dies at `;`.
        if let Some(t) = lock(wt).take() {
            profile.absorb(t);
        }
    }
    stats.pool_workers = threads;
    stats.pool_reuses += report.reused_pool as usize;

    // Phase 2: reduce the hash partitions. Each partition's keys appear in
    // at most `threads` maps; partitions are disjoint, so they merge in
    // parallel without locks on the hot path and concatenate ordered.
    let mut total_groups: usize = 0;
    for m in &worker_parts {
        // LOCK: sequential size probe after the join; temp dies at `;`.
        total_groups += lock(m).iter().map(BTreeMap::len).sum::<usize>();
    }
    let merge_start = coord.start();
    let merged = merge_worker_parts(pool, ctx, threads, &worker_parts, total_groups, stats);
    // Close on the merge *result*: a panicked merge worker must not drop
    // the `Phase::ParallelMerge` span.
    coord.span(Phase::ParallelMerge, SpanLoc::none(), total_groups as u64, merge_start);
    merged
}

/// Phase 2 of [`scan_parallel`]: fold the workers' hash-partitioned maps
/// into one ordered result — serially below
/// [`PARALLEL_MERGE_MIN_GROUPS`], else one fork-join region with a worker
/// per partition. Split out so the coordinator can bracket exactly this
/// fallible region with the [`Phase::ParallelMerge`] span.
fn merge_worker_parts(
    pool: &WorkerPool,
    ctx: &ScanCtx<'_>,
    threads: usize,
    worker_parts: &[Mutex<Vec<GroupMap>>],
    total_groups: usize,
    stats: &mut ExecStats,
) -> Result<GroupMap> {
    let mut merged: GroupMap = BTreeMap::new();
    if total_groups < PARALLEL_MERGE_MIN_GROUPS {
        for wp in worker_parts {
            // LOCK: serial drain after the join; one slot guard at a time.
            for part in lock(wp).drain(..) {
                merge_groups(&mut merged, part);
            }
        }
    } else {
        let merged_parts: Vec<Mutex<GroupMap>> =
            (0..threads).map(|_| Mutex::new(BTreeMap::new())).collect();
        let report = pool
            .run_tagged(ctx.options.tag, threads, &|p| {
                let mut out: GroupMap = BTreeMap::new();
                for wp in worker_parts {
                    // LOCK: slot guard dropped before merging, so at most
                    // one lock is ever held by a merge worker.
                    let mut guard = lock(wp);
                    if let Some(part) = guard.get_mut(p) {
                        let part = std::mem::take(part);
                        drop(guard);
                        merge_groups(&mut out, part);
                    }
                }
                *lock(&merged_parts[p]) = out; // LOCK: own partition `p`; dies at `;`.
            })
            .map_err(|payload| EngineError::WorkerPanicked { detail: panic_message(&payload) })?;
        stats.pool_reuses += report.reused_pool as usize;
        for mp in merged_parts {
            merged.extend(mp.into_inner().unwrap_or_else(PoisonError::into_inner));
        }
    }
    Ok(merged)
}

/// Non-poisoning mutex lock (workers never hold a lock across user code, so
/// a poisoned lock only means some other worker panicked — which the pool
/// already turned into an error).
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    // LOCK: generic acquisition helper — each call site documents its own
    // guard lifetime; poisoning is ignored per the fn contract above.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Deterministic (fixed-key SipHash) hash of a group key, used only to
/// partition the parallel merge.
fn key_hash(key: &[Value]) -> u64 {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    h.finish()
}

/// Fold finished per-segment groups into a result map, moving keys and
/// accumulators (no clones, no zero-filled identity accumulators).
fn merge_groups(map: &mut GroupMap, groups: impl IntoIterator<Item = (Vec<Value>, GroupAcc)>) {
    for (key, acc) in groups {
        merge_one(map, key, acc);
    }
}

fn merge_one(map: &mut GroupMap, key: Vec<Value>, acc: GroupAcc) {
    match map.entry(key) {
        std::collections::btree_map::Entry::Vacant(v) => {
            v.insert(acc);
        }
        std::collections::btree_map::Entry::Occupied(mut o) => o.get_mut().absorb(&acc),
    }
}

/// Where a batch sits (segment ordinal + morsel ordinal) — threaded to the
/// per-batch trace events.
#[derive(Clone, Copy)]
struct BatchAt {
    seg: u32,
    morsel: u32,
}

/// One claimed unit of parallel work.
struct Claim {
    seg: usize,
    /// Morsel ordinal within the segment (stable across runs; trace id).
    morsel: usize,
    range: Batch,
    stolen: bool,
}

/// Skew-proof morsel scheduler. Every worker owns a contiguous *home*
/// partition of the segment list (locality and executor reuse); when the
/// home partition runs dry the worker steals morsels from the victim with
/// the most unclaimed rows, so a hot segment — or a table with fewer
/// segments than workers — is split across everyone.
struct MorselScheduler {
    cursors: Vec<MorselCursor>,
}

impl MorselScheduler {
    fn new(segments: &[(u32, &Segment)], morsel_rows: usize) -> MorselScheduler {
        MorselScheduler {
            cursors: segments
                .iter()
                .map(|(_, seg)| MorselCursor::new(seg.num_rows(), morsel_rows))
                .collect(),
        }
    }

    fn claim(&self, worker: usize, workers: usize, last: &mut Option<usize>) -> Option<Claim> {
        let n = self.cursors.len();
        if n == 0 {
            return None;
        }
        let home_lo = worker * n / workers;
        let home_hi = (worker + 1) * n / workers;
        let in_home = |s: usize| s >= home_lo && s < home_hi;
        // Affinity: keep draining the segment of the previous claim.
        if let Some(s) = *last {
            if let Some((morsel, range)) = self.cursors[s].claim_indexed() {
                return Some(Claim { seg: s, morsel, range, stolen: !in_home(s) });
            }
        }
        for s in home_lo..home_hi {
            if let Some((morsel, range)) = self.cursors[s].claim_indexed() {
                *last = Some(s);
                return Some(Claim { seg: s, morsel, range, stolen: false });
            }
        }
        loop {
            let victim = (0..n)
                .filter(|&s| !in_home(s))
                .max_by_key(|&s| self.cursors[s].remaining())
                .filter(|&s| self.cursors[s].remaining() > 0)?;
            if let Some((morsel, range)) = self.cursors[victim].claim_indexed() {
                *last = Some(victim);
                return Some(Claim { seg: victim, morsel, range, stolen: true });
            }
            // Raced another thief to the last morsel; look again.
        }
    }

    /// Drain every remaining claim (governor stop broadcast): after this,
    /// all workers' next `claim` returns `None`, so siblings of a tripped
    /// worker park within one morsel even between their own checks.
    fn close(&self) {
        for c in &self.cursors {
            c.close();
        }
    }
}

/// Resumable scan state for one segment on one worker: morsels of the same
/// segment reuse the planned mapper, strategy choice, and scratch buffers.
struct SegScan<'a> {
    seg: &'a Segment,
    /// Table segment ordinal (the id trace events carry).
    seg_index: u32,
    ctx: ScanCtx<'a>,
    has_deletes: bool,
    stats: ExecStats,
    /// This worker-segment state's slice of the memory budget (per-worker
    /// slack keeps per-batch charges off the governor's shared counter).
    mem: MemScope,
    kind: SegScanKind<'a>,
}

enum SegScanKind<'a> {
    // Boxed: the narrow state (strategy template + scratch) is several
    // hundred bytes and lives in a per-worker HashMap.
    Narrow(Box<NarrowScan<'a>>),
    Wide(Box<WideScan<'a>>),
}

impl<'a> SegScan<'a> {
    /// Plan the per-segment machinery (mapper, aggregate inputs). The
    /// segment must already have passed admission (overflow proofs etc.).
    fn plan(seg_index: u32, seg: &'a Segment, ctx: &ScanCtx<'a>) -> Result<SegScan<'a>> {
        let kind = match plan_segment_mapper(seg, ctx.group_cols)? {
            SegmentGroupMapper::Narrow(mapper) => {
                SegScanKind::Narrow(Box::new(NarrowScan::plan(seg, mapper, ctx)))
            }
            SegmentGroupMapper::Wide(mapper) => {
                SegScanKind::Wide(Box::new(WideScan::plan(mapper, ctx)))
            }
        };
        Ok(SegScan {
            seg,
            seg_index,
            ctx: *ctx,
            has_deletes: !seg.deleted().none_deleted(),
            stats: ExecStats::default(),
            mem: MemScope::default(),
            kind,
        })
    }

    /// Scan rows `[start, start + len)` in batch windows. `start` must lie
    /// on the segment's batch grid so parallel and serial scans agree on
    /// window boundaries. One [`Phase::SegmentScan`] span covers the range
    /// (a whole segment serially, one morsel in parallel — `morsel` is
    /// [`NO_ID`] for the former).
    fn process_range(
        &mut self,
        start: usize,
        len: usize,
        morsel: u32,
        stolen: bool,
        tracer: &mut Tracer,
    ) -> Result<()> {
        debug_assert_eq!(
            start % self.ctx.options.batch_rows,
            0,
            "morsel start must be batch-aligned"
        );
        let range_start = tracer.start();
        let result = self.scan_batches(start, len, morsel, tracer);
        // Close on the batch-loop *result*: a governor trip or a failed
        // batch must not drop the `Phase::SegmentScan` span.
        tracer.span(
            Phase::SegmentScan,
            SpanLoc::at(self.seg_index, morsel).with_stolen(stolen),
            len as u64,
            range_start,
        );
        result
    }

    /// The batch loop of [`SegScan::process_range`]: checkpoint, then
    /// process, one batch window at a time. Split out so the caller can
    /// bracket exactly this fallible region with the span.
    fn scan_batches(
        &mut self,
        start: usize,
        len: usize,
        morsel: u32,
        tracer: &mut Tracer,
    ) -> Result<()> {
        let governor = self.ctx.governor;
        for b in BatchCursor::with_batch_rows(len, self.ctx.options.batch_rows) {
            // The batch-boundary checkpoint: one branch when no limit is
            // set, so the governor-off path stays inside the ≤ 2% Off gate.
            if governor.active() {
                self.stats.governor_checks += 1;
                governor.check()?;
            }
            let batch = Batch { start: start + b.start, len: b.len };
            let at = BatchAt { seg: self.seg_index, morsel };
            match &mut self.kind {
                SegScanKind::Narrow(n) => n.process_batch(
                    self.seg,
                    &self.ctx,
                    self.has_deletes,
                    batch,
                    at,
                    &mut self.stats,
                    &mut self.mem,
                    tracer,
                )?,
                SegScanKind::Wide(w) => w.process_batch(
                    self.seg,
                    &self.ctx,
                    self.has_deletes,
                    batch,
                    at,
                    &mut self.stats,
                    &mut self.mem,
                    tracer,
                )?,
            }
        }
        Ok(())
    }

    /// Tear down into per-group results plus this state's stats.
    fn finish(self) -> (Vec<(Vec<Value>, GroupAcc)>, ExecStats) {
        let groups = match self.kind {
            SegScanKind::Narrow(n) => n.finish(),
            SegScanKind::Wide(w) => w.finish(),
        };
        (groups, self.stats)
    }
}

/// Metadata-driven overflow proof (§2.1): every sum over the segment must
/// fit `i64`.
fn check_overflow(seg: &Segment, sum_exprs: &[ResolvedExpr]) -> Result<()> {
    let rows = seg.num_rows() as i128;
    for (i, expr) in sum_exprs.iter().enumerate() {
        let (lo, hi) = expr.value_range(&|col| {
            let m = seg.meta(col);
            (m.min, m.max)
        });
        let bound = lo.abs().max(hi.abs());
        if bound.saturating_mul(rows) > i64::MAX as i128 {
            return Err(EngineError::PotentialOverflow { aggregate: i });
        }
    }
    Ok(())
}

/// MIN/MAX never accumulate, but the expression itself must fit `i64`.
fn check_minmax_range(seg: &Segment, num_sums: usize, mm_exprs: &[ResolvedExpr]) -> Result<()> {
    for (i, expr) in mm_exprs.iter().enumerate() {
        let (lo, hi) = expr.value_range(&|col| {
            let m = seg.meta(col);
            (m.min, m.max)
        });
        if lo < i64::MIN as i128 || hi > i64::MAX as i128 {
            return Err(EngineError::PotentialOverflow { aggregate: num_sums + i });
        }
    }
    Ok(())
}

/// Heap header of a `Vec<i64>` group key (pointer/len/cap words).
const VEC_HEADER_BYTES: usize = 24;
/// Estimated per-entry overhead of the wide path's interning hash map.
const MAP_ENTRY_BYTES: usize = 48;

/// Per-group heap cost of the wide path: the interned key tuple is stored
/// twice (hash-map key and the id→key table) plus map-entry overhead, and
/// each group owns one count slot, one slot per sum, and min+max slots per
/// MIN/MAX aggregate. A deliberate estimate (DESIGN.md §10): allocator slop
/// and map load factor are ignored.
fn wide_group_bytes(key_cols: usize, num_sums: usize, num_mm: usize) -> usize {
    2 * (VEC_HEADER_BYTES + 8 * key_cols) + MAP_ENTRY_BYTES + 8 * (1 + num_sums + 2 * num_mm)
}

/// Plan-time upper bound on a wide segment's hash-table footprint: the
/// product of per-column domain estimates (dictionary sizes, bit-packed
/// metadata ranges; live rows when a column's domain is unbounded), capped
/// at the segment's live rows, times [`wide_group_bytes`].
fn projected_wide_bytes(
    seg: &Segment,
    group_cols: &[(usize, LogicalType)],
    num_sums: usize,
    num_mm: usize,
) -> usize {
    let mut groups = 1usize;
    for &(idx, _) in group_cols {
        let card = match seg.column(idx) {
            EncodedColumn::StrDict(d) => d.dict().len(),
            EncodedColumn::IntDict(d) => d.dict().len(),
            EncodedColumn::BitPack(_) => {
                usize::try_from(seg.meta(idx).range()).unwrap_or(usize::MAX).saturating_add(1)
            }
            _ => seg.live_rows(),
        };
        groups = groups.saturating_mul(card.max(1));
    }
    groups = groups.min(seg.live_rows());
    groups.saturating_mul(wide_group_bytes(group_cols.len(), num_sums, num_mm))
}

/// Plan-time facts that make a segment eligible for the run-wise
/// encoding-specialized path (DESIGN.md §13): ungrouped, no deleted rows,
/// every aggregate a bare RLE column, and the filter (if any) answerable
/// run-wise. The chooser still decides per segment whether to take it.
struct RunWisePlan<'a> {
    sum_cols: Vec<&'a RleColumn>,
    mm_cols: Vec<&'a RleColumn>,
    /// Worst (largest) runs/rows ratio over every RLE column the scan
    /// touches — the cost model's work proxy for the run-wise path.
    runs_fraction: f64,
}

/// The narrow path's executor: either the generic per-row strategy family
/// or the run-wise executor that consumes run spans without unpacking.
// One instance per segment scan, held inline in `NarrowScan` — boxing the
// larger variant would buy nothing and cost a hot-path indirection.
#[allow(clippy::large_enum_variant)]
enum NarrowExec<'a> {
    Generic(SegmentAggExecutor<'a>),
    RunWise(RunWiseExec<'a>),
}

/// The BIPie fast path: u8 group ids, specialized kernels.
struct NarrowScan<'a> {
    mapper: NarrowMapper<'a>,
    /// Aggregate inputs, parked here until the first batch's measured
    /// selectivity picks the strategy (§3: per segment, at run time).
    inputs_slot: Vec<AggInput<'a>>,
    mm_inputs_slot: Vec<AggInput<'a>>,
    agg_params_template: AggChoiceParams,
    dominant_bits: u8,
    /// Run-wise eligibility, decided at plan time; cleared if the first
    /// batch's chooser picks a generic strategy instead.
    runwise: Option<RunWisePlan<'a>>,
    executor: Option<NarrowExec<'a>>,
    gids: Vec<u8>,
    gid_scratch: Vec<u8>,
    fscratch: FilterScratch,
    sel_buf: Vec<u8>,
    span_buf: RunSpanVec,
    /// Whether the batch-sized working buffers were charged to the
    /// accountant (once per state; they are reused across batches).
    charged_bufs: bool,
}

/// The RLE column behind `e` when `e` is a bare reference to one.
fn bare_rle<'a>(seg: &'a Segment, e: &ResolvedExpr) -> Option<&'a RleColumn> {
    match seg.column(e.as_bare_column()?) {
        EncodedColumn::Rle(r) => Some(r),
        _ => None,
    }
}

impl<'a> NarrowScan<'a> {
    fn plan(seg: &'a Segment, mapper: NarrowMapper<'a>, ctx: &ScanCtx<'a>) -> NarrowScan<'a> {
        // Plan the aggregate inputs: bare bit-packed columns feed kernels in
        // their encoded form; everything else evaluates as an expression.
        let plan_input = |e: &'a ResolvedExpr| match e.as_bare_column() {
            Some(col) => match seg.column(col) {
                EncodedColumn::BitPack(c) => AggInput::Packed(c),
                _ => AggInput::Computed(e.clone()),
            },
            None => AggInput::Computed(e.clone()),
        };
        let inputs: Vec<AggInput<'a>> = ctx.sum_exprs.iter().map(plan_input).collect();
        let mm_inputs: Vec<AggInput<'a>> = ctx.mm_exprs.iter().map(plan_input).collect();

        // The bit width driving the gather/compact crossover: widest packed
        // aggregate input, else the group-code width.
        let dominant_bits = inputs
            .iter()
            .filter_map(|i| match i {
                AggInput::Packed(c) => Some(c.bits()),
                AggInput::Computed(_) => None,
            })
            .max()
            .unwrap_or_else(|| mapper.code_bits());

        let agg_params_template = AggChoiceParams {
            num_groups_effective: mapper.num_groups() + 1,
            num_sums: inputs.len(),
            input_bytes: inputs.iter().map(AggInput::width_bytes).collect(),
            all_packed_narrow: !inputs.is_empty() && inputs.iter().all(AggInput::sortable_packed),
            multi_layout_fits: bipie_toolbox::agg::multi::RowLayout::plan(
                &inputs.iter().map(AggInput::width_bytes).collect::<Vec<_>>(),
            )
            .is_some(),
            est_selectivity: 1.0,
            runwise_runs_fraction: None,
        };

        NarrowScan {
            mapper,
            inputs_slot: inputs,
            mm_inputs_slot: mm_inputs,
            agg_params_template,
            dominant_bits,
            runwise: Self::plan_runwise(seg, ctx),
            executor: None,
            gids: Vec::new(),
            gid_scratch: Vec::new(),
            fscratch: FilterScratch::default(),
            sel_buf: Vec::new(),
            span_buf: RunSpanVec::new(),
            charged_bufs: false,
        }
    }

    /// Structural eligibility for the run-wise path, checked once per
    /// segment. Forcing any *other* strategy disables it up front so forced
    /// experiments exercise exactly the strategy they name.
    fn plan_runwise(seg: &'a Segment, ctx: &ScanCtx<'a>) -> Option<RunWisePlan<'a>> {
        if !ctx.group_cols.is_empty() || !seg.deleted().none_deleted() {
            return None;
        }
        match ctx.options.forced_selection {
            None | Some(SelectionStrategy::RunSpan) => {}
            Some(_) => return None,
        }
        match ctx.options.forced_agg {
            None | Some(AggStrategy::RunWise) => {}
            Some(_) => return None,
        }
        let sum_cols: Vec<&RleColumn> =
            ctx.sum_exprs.iter().map(|e| bare_rle(seg, e)).collect::<Option<_>>()?;
        let mm_cols: Vec<&RleColumn> =
            ctx.mm_exprs.iter().map(|e| bare_rle(seg, e)).collect::<Option<_>>()?;
        let rows = seg.num_rows().max(1) as f64;
        let mut runs_fraction: f64 = 0.0;
        for c in sum_cols.iter().chain(&mm_cols) {
            runs_fraction = runs_fraction.max(c.run_values().len() as f64 / rows);
        }
        if let Some(f) = ctx.filter {
            runs_fraction = runs_fraction.max(span_runs_fraction(f, seg)?);
        }
        Some(RunWisePlan { sum_cols, mm_cols, runs_fraction })
    }

    #[allow(clippy::too_many_arguments)] // internal batch-loop plumbing
    fn process_batch(
        &mut self,
        seg: &'a Segment,
        ctx: &ScanCtx<'a>,
        has_deletes: bool,
        batch: Batch,
        at: BatchAt,
        stats: &mut ExecStats,
        mem: &mut MemScope,
        tracer: &mut Tracer,
    ) -> Result<()> {
        let options = ctx.options;
        let level = options.level;
        if !self.charged_bufs {
            // Batch-sized working buffers, charged once per state before
            // they grow: group ids, unpack scratch, selection bytes.
            mem.charge(ctx.governor, 3 * options.batch_rows)?;
            self.charged_bufs = true;
        }

        // The run-wise fast path: predicate evaluated run-at-a-time into
        // spans, aggregates folded value×length — no unpack, no per-row
        // selection bytes. The first batch's chooser commits the segment to
        // it (or declines, clearing the plan so later batches skip the
        // probe and the generic machinery below runs instead).
        if self.runwise.is_some() && !matches!(self.executor, Some(NarrowExec::Generic(_))) {
            if self.try_process_runwise(seg, ctx, batch, at, stats, tracer) {
                return Ok(());
            }
            self.runwise = None;
        }

        let unpack_start = tracer.start();
        self.mapper.extract_batch(
            batch.start,
            batch.len,
            &mut self.gids,
            &mut self.gid_scratch,
            level,
        );
        tracer.span(Phase::Unpack, SpanLoc::at(at.seg, at.morsel), batch.len as u64, unpack_start);

        // Filter + deleted-row merge -> selection byte vector, plus the
        // selectivity measurement that drives the per-batch choice.
        let select_start = tracer.start();
        let sel: Option<&[u8]> = if ctx.filter.is_some() || has_deletes {
            self.sel_buf.resize(batch.len, 0xFF);
            match ctx.filter {
                // The comparison writes every byte; no prefill needed.
                Some(f) => {
                    f.eval_batch(seg, batch.start, &mut self.sel_buf, &mut self.fscratch, level)
                }
                None => self.sel_buf.fill(0xFF),
            }
            seg.deleted().mask_batch(batch.start, &mut self.sel_buf);
            Some(&self.sel_buf)
        } else {
            None
        };
        let selectivity = match sel {
            Some(s) => count_selected(s, level) as f64 / batch.len.max(1) as f64,
            None => 1.0,
        };
        // Run-span selection has no dense byte-mask form, so forcing it on
        // a segment the run-wise plan rejected falls back to the chooser.
        let forced_selection = match options.forced_selection {
            Some(s) if s != SelectionStrategy::RunSpan => Some(s),
            _ => None,
        };
        let selection = forced_selection
            .unwrap_or_else(|| options.config.choose_selection(selectivity, self.dominant_bits));
        tracer.span(
            Phase::Selection,
            SpanLoc::at(at.seg, at.morsel).with_selection(selection),
            batch.len as u64,
            select_start,
        );
        tracer.decision_selection(
            at.seg,
            at.morsel,
            batch.start as u64,
            batch.len as u32,
            self.dominant_bits,
            selectivity,
            selection,
            forced_selection.is_some(),
        );
        stats.record_selection(selection);

        // Lazily pick the aggregation strategy from the first batch's
        // measured selectivity (§3: per segment, at run time).
        if self.executor.is_none() {
            let mut params = self.agg_params_template.clone();
            params.est_selectivity = selectivity;
            // With a memory budget, the chooser degrades along the
            // sort-based → scalar ladder when the winner's projected
            // working set would not fit (DESIGN.md §10); the outcome is
            // logged below as a normal decision event.
            let footprint = |s: AggStrategy| {
                SegmentAggExecutor::projected_bytes(
                    s,
                    self.mapper.num_groups(),
                    &self.inputs_slot,
                    &self.mm_inputs_slot,
                    options.batch_rows,
                )
            };
            // Run-wise aggregation needs the run-wise plan (bare RLE
            // columns); forcing it on an ineligible segment likewise
            // reverts to the chooser, which never picks it here because
            // the template leaves `runwise_runs_fraction` unset.
            let forced_agg = match options.forced_agg {
                Some(s) if s != AggStrategy::RunWise => Some(s),
                _ => None,
            };
            let strategy = forced_agg.unwrap_or_else(|| {
                options.config.choose_agg_budgeted(&params, ctx.governor.remaining(), &footprint)
            });
            stats.record_agg(strategy);
            tracer.decision_agg(
                at.seg,
                params.num_groups_effective as u32,
                params.num_sums as u32,
                ctx.mm_exprs.len() as u32,
                params.est_selectivity,
                params.all_packed_narrow,
                params.multi_layout_fits,
                strategy,
                forced_agg.is_some(),
            );
            // Charge the executor's projected accumulators and scratch
            // before constructing it: a violation surfaces as the typed
            // error instead of an allocation.
            let projected = footprint(strategy);
            mem.charge(ctx.governor, projected)?;
            self.executor = Some(NarrowExec::Generic(SegmentAggExecutor::with_min_max(
                strategy,
                self.mapper.num_groups(),
                std::mem::take(&mut self.inputs_slot),
                std::mem::take(&mut self.mm_inputs_slot),
                level,
            )));
        }
        let Some(NarrowExec::Generic(exec)) = self.executor.as_mut() else {
            // PANIC: the run-wise branch above returned early, so the
            // executor here is always the generic one (installed just above
            // on the first batch).
            unreachable!("generic executor installed above")
        };

        let agg_start = tracer.start();
        let agg_strategy = exec.strategy();
        exec.process_batch(seg, batch.start, batch.len, &mut self.gids, sel, selection);
        tracer.span(
            Phase::Aggregation,
            SpanLoc::at(at.seg, at.morsel).with_selection(selection).with_agg(agg_strategy),
            batch.len as u64,
            agg_start,
        );
        Ok(())
    }

    /// Process one batch run-wise: spans from the predicate, value×length
    /// aggregation, no gid unpack. Returns `false` (batch untouched) only
    /// when the first batch's chooser picks a generic strategy.
    fn try_process_runwise(
        &mut self,
        seg: &'a Segment,
        ctx: &ScanCtx<'a>,
        batch: Batch,
        at: BatchAt,
        stats: &mut ExecStats,
        tracer: &mut Tracer,
    ) -> bool {
        let options = ctx.options;
        let select_start = tracer.start();
        match ctx.filter {
            Some(f) => f.eval_batch_spans(
                seg,
                batch.start,
                batch.len,
                &mut self.span_buf,
                &mut self.fscratch,
            ),
            None => self.span_buf.set_full(batch.len),
        }
        let selectivity = self.span_buf.selected_rows() as f64 / batch.len.max(1) as f64;

        if self.executor.is_none() {
            // PANIC: the caller enters this path only while the plan exists.
            let plan = self.runwise.as_ref().expect("caller checked the plan");
            let mut params = self.agg_params_template.clone();
            params.est_selectivity = selectivity;
            params.runwise_runs_fraction = Some(plan.runs_fraction);
            // No budget ladder here: the run-wise executor's footprint is a
            // handful of scalars (`projected_bytes` reports 0), so a plain
            // cost-model choice suffices and any budget admits it.
            let strategy = options.forced_agg.unwrap_or_else(|| options.config.choose_agg(&params));
            if strategy != AggStrategy::RunWise {
                // The span predicate evaluation above really ran; close its
                // span before bailing to the generic path (which redoes the
                // selection and records its own span — both happened).
                tracer.span(
                    Phase::Selection,
                    SpanLoc::at(at.seg, at.morsel).with_selection(SelectionStrategy::RunSpan),
                    batch.len as u64,
                    select_start,
                );
                return false;
            }
            stats.record_agg(strategy);
            tracer.decision_agg(
                at.seg,
                params.num_groups_effective as u32,
                params.num_sums as u32,
                ctx.mm_exprs.len() as u32,
                params.est_selectivity,
                params.all_packed_narrow,
                params.multi_layout_fits,
                strategy,
                options.forced_agg.is_some(),
            );
            self.executor = Some(NarrowExec::RunWise(RunWiseExec::new(
                plan.sum_cols.clone(),
                plan.mm_cols.clone(),
            )));
        }
        tracer.span(
            Phase::Selection,
            SpanLoc::at(at.seg, at.morsel).with_selection(SelectionStrategy::RunSpan),
            batch.len as u64,
            select_start,
        );
        tracer.decision_selection(
            at.seg,
            at.morsel,
            batch.start as u64,
            batch.len as u32,
            self.dominant_bits,
            selectivity,
            SelectionStrategy::RunSpan,
            options.forced_selection.is_some(),
        );
        stats.record_selection(SelectionStrategy::RunSpan);

        let Some(NarrowExec::RunWise(exec)) = self.executor.as_mut() else {
            // PANIC: installed as RunWise above, or by a previous batch (the
            // caller skips this path once a generic executor exists).
            unreachable!("run-wise executor installed above")
        };
        let agg_start = tracer.start();
        exec.process_spans(batch.start, &self.span_buf);
        tracer.span(
            Phase::Aggregation,
            SpanLoc::at(at.seg, at.morsel)
                .with_selection(SelectionStrategy::RunSpan)
                .with_agg(AggStrategy::RunWise),
            batch.len as u64,
            agg_start,
        );
        true
    }

    fn finish(self) -> Vec<(Vec<Value>, GroupAcc)> {
        let Some(exec) = self.executor else { return Vec::new() };
        let num_groups = self.mapper.num_groups();
        let result = match exec {
            NarrowExec::Generic(e) => e.finish(),
            NarrowExec::RunWise(e) => e.finish(),
        };
        (0..num_groups)
            .filter(|&g| result.counts[g] > 0)
            .map(|g| {
                (
                    self.mapper.group_key(g),
                    GroupAcc {
                        count: result.counts[g],
                        sums: result.sums.iter().map(|s| s[g]).collect(),
                        mins: result.mins.iter().map(|m| m[g]).collect(),
                        maxs: result.maxs.iter().map(|m| m[g]).collect(),
                    },
                )
            })
            .collect()
    }
}

/// Wide-group fallback: u32 group ids, scalar row loop.
struct WideScan<'a> {
    mapper: WideMapper<'a>,
    counts: Vec<u64>,
    sums: Vec<Vec<i64>>,
    mins: Vec<Vec<i64>>,
    maxs: Vec<Vec<i64>>,
    gids: Vec<u32>,
    key_scratch: Vec<Vec<i64>>,
    fscratch: FilterScratch,
    sel_buf: Vec<u8>,
    col_cache: Vec<(usize, Vec<i64>)>,
    /// Combined expression list: sums first, then MIN/MAX (the CSE
    /// compilation order of `resolve_many`).
    all_exprs: Vec<&'a ResolvedExpr>,
    num_sums: usize,
    expr_vals: Vec<Vec<i64>>,
    expr_scratch: crate::expr::ExprScratch,
    recorded_agg: bool,
    /// Group count already charged to the memory accountant; each batch
    /// charges the interning delta at [`wide_group_bytes`] per group.
    charged_groups: usize,
    /// Whether the batch-sized working buffers were charged (once).
    charged_bufs: bool,
}

impl<'a> WideScan<'a> {
    fn plan(mapper: WideMapper<'a>, ctx: &ScanCtx<'a>) -> WideScan<'a> {
        let all_exprs: Vec<&ResolvedExpr> = ctx.sum_exprs.iter().chain(ctx.mm_exprs).collect();
        WideScan {
            mapper,
            counts: Vec::new(),
            sums: vec![Vec::new(); ctx.sum_exprs.len()],
            mins: vec![Vec::new(); ctx.mm_exprs.len()],
            maxs: vec![Vec::new(); ctx.mm_exprs.len()],
            gids: Vec::new(),
            key_scratch: Vec::new(),
            fscratch: FilterScratch::default(),
            sel_buf: Vec::new(),
            col_cache: Vec::new(),
            expr_vals: vec![Vec::new(); all_exprs.len()],
            all_exprs,
            num_sums: ctx.sum_exprs.len(),
            expr_scratch: crate::expr::ExprScratch::default(),
            recorded_agg: false,
            charged_groups: 0,
            charged_bufs: false,
        }
    }

    #[allow(clippy::too_many_arguments)] // internal batch-loop plumbing
    fn process_batch(
        &mut self,
        seg: &'a Segment,
        ctx: &ScanCtx<'a>,
        has_deletes: bool,
        batch: Batch,
        at: BatchAt,
        stats: &mut ExecStats,
        mem: &mut MemScope,
        tracer: &mut Tracer,
    ) -> Result<()> {
        let level = ctx.options.level;
        if !self.charged_bufs {
            // Batch-sized working buffers, charged once per state: u32
            // group ids + selection bytes + i64 buffers for the group-key
            // scratch, per-column decode caches, and expression results.
            let per_row = 4 + 1 + 8 * (ctx.group_cols.len() + 2 * self.all_exprs.len());
            mem.charge(ctx.governor, ctx.options.batch_rows * per_row)?;
            self.charged_bufs = true;
        }
        if !self.recorded_agg {
            stats.record_agg(AggStrategy::Scalar);
            self.recorded_agg = true;
            // The wide-group path is structural (group domain too wide for
            // u8 ids), not a cost-model outcome: `forced` stays false and
            // the group count is the mapper's running intern count.
            tracer.decision_agg(
                at.seg,
                self.mapper.num_groups() as u32,
                self.num_sums as u32,
                (self.all_exprs.len() - self.num_sums) as u32,
                1.0,
                false,
                false,
                AggStrategy::Scalar,
                false,
            );
        }
        stats.record_selection(SelectionStrategy::Compact);
        let unpack_start = tracer.start();
        self.mapper.extract_batch(batch.start, batch.len, &mut self.gids, &mut self.key_scratch);
        tracer.span(Phase::Unpack, SpanLoc::at(at.seg, at.morsel), batch.len as u64, unpack_start);

        let select_start = tracer.start();
        let sel: Option<&[u8]> = if ctx.filter.is_some() || has_deletes {
            self.sel_buf.clear();
            self.sel_buf.resize(batch.len, 0xFF);
            if let Some(f) = ctx.filter {
                f.eval_batch(seg, batch.start, &mut self.sel_buf, &mut self.fscratch, level);
            }
            seg.deleted().mask_batch(batch.start, &mut self.sel_buf);
            Some(&self.sel_buf)
        } else {
            None
        };
        tracer.span(
            Phase::Selection,
            SpanLoc::at(at.seg, at.morsel).with_selection(SelectionStrategy::Compact),
            batch.len as u64,
            select_start,
        );
        if tracer.enabled() {
            // The selectivity count is profiling-only work on this path, so
            // it hides behind the gate.
            let observed = match sel {
                Some(s) => count_selected(s, level) as f64 / batch.len.max(1) as f64,
                None => 1.0,
            };
            tracer.decision_selection(
                at.seg,
                at.morsel,
                batch.start as u64,
                batch.len as u32,
                32,
                observed,
                SelectionStrategy::Compact,
                false,
            );
        }
        let wide_start = tracer.start();

        // Decode expression inputs over the full batch.
        let mut needed: Vec<usize> = Vec::new();
        for e in &self.all_exprs {
            for c in e.columns() {
                if !needed.contains(&c) {
                    needed.push(c);
                }
            }
        }
        self.col_cache.retain(|(c, _)| needed.contains(c));
        for &c in &needed {
            if !self.col_cache.iter().any(|(cc, _)| *cc == c) {
                self.col_cache.push((c, Vec::new()));
            }
        }
        for (c, buf) in self.col_cache.iter_mut() {
            buf.clear();
            buf.resize(batch.len, 0);
            seg.column(*c).decode_i64_into(batch.start, buf);
        }
        {
            let cache = &self.col_cache;
            let lookup = |idx: usize| -> &[i64] {
                // PANIC: `col_cache` was populated above for exactly the
                // columns the compiled expressions reference.
                cache.iter().find(|(c, _)| *c == idx).map(|(_, v)| v.as_slice()).unwrap()
            };
            for (i, e) in self.all_exprs.iter().enumerate() {
                let (done, rest) = self.expr_vals.split_at_mut(i);
                let prev = |p: usize| -> &[i64] { &done[p] };
                e.eval_batch_with_prev(
                    batch.len,
                    &lookup,
                    &prev,
                    &mut rest[0],
                    &mut self.expr_scratch,
                );
            }
        }

        // Scalar accumulation.
        for i in 0..batch.len {
            if let Some(s) = sel {
                if s[i] == 0 {
                    continue;
                }
            }
            let g = self.gids[i] as usize;
            if g >= self.counts.len() {
                self.counts.resize(g + 1, 0);
                for s in self.sums.iter_mut() {
                    s.resize(g + 1, 0);
                }
                for m in self.mins.iter_mut() {
                    m.resize(g + 1, i64::MAX);
                }
                for m in self.maxs.iter_mut() {
                    m.resize(g + 1, i64::MIN);
                }
            }
            self.counts[g] += 1;
            for (s, vals) in self.sums.iter_mut().zip(&self.expr_vals) {
                s[g] += vals[i];
            }
            for (j, vals) in self.expr_vals[self.num_sums..].iter().enumerate() {
                self.mins[j][g] = self.mins[j][g].min(vals[i]);
                self.maxs[j][g] = self.maxs[j][g].max(vals[i]);
            }
        }
        tracer.span(
            Phase::WideGroup,
            SpanLoc::at(at.seg, at.morsel)
                .with_selection(SelectionStrategy::Compact)
                .with_agg(AggStrategy::Scalar),
            batch.len as u64,
            wide_start,
        );

        // Charge the hash table's growth from this batch's interning (key
        // tuples + accumulator slots). The charge trails the allocation by
        // one batch at most; a violation stops the scan at this boundary
        // with no partial result surfaced.
        let groups = self.mapper.num_groups();
        if groups > self.charged_groups {
            let per_group = wide_group_bytes(
                ctx.group_cols.len(),
                self.num_sums,
                self.all_exprs.len() - self.num_sums,
            );
            mem.charge(ctx.governor, (groups - self.charged_groups) * per_group)?;
            self.charged_groups = groups;
        }
        Ok(())
    }

    fn finish(self) -> Vec<(Vec<Value>, GroupAcc)> {
        (0..self.counts.len())
            .filter(|&g| self.counts[g] > 0)
            .map(|g| {
                (
                    self.mapper.group_key(g),
                    GroupAcc {
                        count: self.counts[g],
                        sums: self.sums.iter().map(|s| s[g]).collect(),
                        mins: self.mins.iter().map(|m| m[g]).collect(),
                        maxs: self.maxs.iter().map(|m| m[g]).collect(),
                    },
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::filter::Predicate;
    use bipie_columnstore::{ColumnSpec, TableBuilder};

    fn table(rows: usize, segment_rows: usize) -> Table {
        let mut b = TableBuilder::with_segment_rows(
            vec![ColumnSpec::new("flag", LogicalType::Str), ColumnSpec::new("v", LogicalType::I64)],
            segment_rows,
        );
        for i in 0..rows as i64 {
            b.push_row(vec![Value::Str(["A", "N", "R"][(i % 3) as usize].into()), Value::I64(i)]);
        }
        b.finish()
    }

    fn v_expr(t: &Table) -> ResolvedExpr {
        Expr::col("v").resolve(&|n| t.column_index(n)).unwrap()
    }

    #[test]
    fn multi_segment_merge() {
        let t = table(1000, 300); // 4 segments
        let expr = v_expr(&t);
        let (groups, stats, _) =
            scan_table(&t, None, &[(0, LogicalType::Str)], &[expr], &[], &ScanOptions::default())
                .unwrap();
        assert_eq!(stats.segments_scanned, 4);
        assert_eq!(groups.len(), 3);
        let total: u64 = groups.values().map(|g| g.count).sum();
        assert_eq!(total, 1000);
        let sum: i64 = groups.values().map(|g| g.sums[0]).sum();
        assert_eq!(sum, (0..1000).sum::<i64>());
        // Per-group check against the construction.
        let a = &groups[&vec![Value::Str("A".into())]];
        assert_eq!(a.count, 334);
        assert_eq!(a.sums[0], (0..1000i64).filter(|i| i % 3 == 0).sum::<i64>());
    }

    #[test]
    fn filter_and_elimination() {
        let t = table(1000, 250); // segments cover v ranges [0,250) ...
        let expr = v_expr(&t);
        let pred = Predicate::lt("v", Value::I64(100)).resolve(&t).unwrap();
        let (groups, stats, _) = scan_table(
            &t,
            Some(&pred),
            &[(0, LogicalType::Str)],
            &[expr],
            &[],
            &ScanOptions::default(),
        )
        .unwrap();
        assert_eq!(stats.segments_eliminated, 3);
        assert_eq!(stats.segments_scanned, 1);
        let total: u64 = groups.values().map(|g| g.count).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn deleted_rows_are_skipped() {
        let mut t = table(300, 1000);
        t.segment_mut(0).delete_row(0);
        t.segment_mut(0).delete_row(1);
        let expr = v_expr(&t);
        let (groups, _, _) =
            scan_table(&t, None, &[(0, LogicalType::Str)], &[expr], &[], &ScanOptions::default())
                .unwrap();
        let total: u64 = groups.values().map(|g| g.count).sum();
        assert_eq!(total, 298);
        let sum: i64 = groups.values().map(|g| g.sums[0]).sum();
        assert_eq!(sum, (2..300).sum::<i64>());
    }

    #[test]
    fn overflow_detected() {
        let mut b =
            TableBuilder::with_segment_rows(vec![ColumnSpec::new("v", LogicalType::I64)], 1000);
        for _ in 0..10 {
            b.push_row(vec![Value::I64(i64::MAX / 4)]);
        }
        let t = b.finish();
        let expr = Expr::col("v").mul(Expr::col("v")).resolve(&|n| t.column_index(n)).unwrap();
        let err = scan_table(&t, None, &[], &[expr], &[], &ScanOptions::default()).unwrap_err();
        assert!(matches!(err, EngineError::PotentialOverflow { aggregate: 0 }));
    }

    #[test]
    fn forced_strategies_give_identical_results() {
        let t = table(5000, 1300);
        let expr = v_expr(&t);
        let pred = Predicate::ge("v", Value::I64(500)).resolve(&t).unwrap();
        let baseline = scan_table(
            &t,
            Some(&pred),
            &[(0, LogicalType::Str)],
            std::slice::from_ref(&expr),
            &[],
            &ScanOptions::default(),
        )
        .unwrap()
        .0;
        // The dense strategy families; RunSpan/RunWise need an eligible
        // (ungrouped, all-RLE) segment and are covered below.
        for agg in AggStrategy::DENSE {
            for selection in SelectionStrategy::DENSE {
                let opts = ScanOptions {
                    forced_agg: Some(agg),
                    forced_selection: Some(selection),
                    ..Default::default()
                };
                let (groups, stats, _) = scan_table(
                    &t,
                    Some(&pred),
                    &[(0, LogicalType::Str)],
                    std::slice::from_ref(&expr),
                    &[],
                    &opts,
                )
                .unwrap();
                assert_eq!(groups, baseline, "{agg:?}+{selection:?}");
                assert!(stats.agg_count(agg) > 0);
                assert!(stats.selection_count(selection) > 0);
            }
        }
    }

    #[test]
    fn run_wise_path_aggregates_rle_without_unpack() {
        use bipie_columnstore::EncodingHint;
        // 2000 rows in runs of 100 (runs/rows = 1%): the chooser must take
        // the run-wise path on its own.
        let mut b = TableBuilder::with_segment_rows(
            vec![
                ColumnSpec::new("k", LogicalType::I64).with_hint(EncodingHint::Rle),
                ColumnSpec::new("v", LogicalType::I64).with_hint(EncodingHint::Rle),
            ],
            100_000,
        );
        for i in 0..2000i64 {
            b.push_row(vec![Value::I64(i / 100), Value::I64((i / 100) * 3)]);
        }
        let t = b.finish();
        assert!(matches!(t.segments()[0].column(0), EncodedColumn::Rle(_)));
        let expr = Expr::col("v").resolve(&|n| t.column_index(n)).unwrap();
        let pred = Predicate::lt("k", Value::I64(10)).resolve(&t).unwrap();
        let opts = ScanOptions { parallel: false, ..Default::default() };
        let (groups, stats, _) = scan_table(
            &t,
            Some(&pred),
            &[],
            std::slice::from_ref(&expr),
            std::slice::from_ref(&expr),
            &opts,
        )
        .unwrap();
        assert_eq!(stats.agg_count(AggStrategy::RunWise), 1, "{stats:?}");
        assert!(stats.selection_count(SelectionStrategy::RunSpan) > 0);
        let acc = &groups[&Vec::new()];
        assert_eq!(acc.count, 1000);
        assert_eq!(acc.sums[0], (0..10i64).map(|g| g * 300).sum::<i64>());
        assert_eq!(acc.mins[0], 0);
        assert_eq!(acc.maxs[0], 27);

        // The always-available decode fallback must agree byte-for-byte.
        let forced = ScanOptions {
            parallel: false,
            forced_agg: Some(AggStrategy::Scalar),
            forced_selection: Some(SelectionStrategy::Compact),
            ..Default::default()
        };
        let (fallback, fstats, _) = scan_table(
            &t,
            Some(&pred),
            &[],
            std::slice::from_ref(&expr),
            std::slice::from_ref(&expr),
            &forced,
        )
        .unwrap();
        assert_eq!(fallback, groups);
        assert_eq!(fstats.agg_count(AggStrategy::RunWise), 0);
    }

    #[test]
    fn forcing_run_wise_on_ineligible_segment_falls_back() {
        // Grouped scan over non-RLE columns: a forced RunWise/RunSpan pair
        // must quietly revert to the chooser, not panic in the generic
        // kernels.
        let t = table(3000, 1300);
        let expr = v_expr(&t);
        let opts = ScanOptions {
            forced_agg: Some(AggStrategy::RunWise),
            forced_selection: Some(SelectionStrategy::RunSpan),
            parallel: false,
            ..Default::default()
        };
        let (groups, stats, _) =
            scan_table(&t, None, &[(0, LogicalType::Str)], std::slice::from_ref(&expr), &[], &opts)
                .unwrap();
        let baseline = scan_table(
            &t,
            None,
            &[(0, LogicalType::Str)],
            std::slice::from_ref(&expr),
            &[],
            &ScanOptions { parallel: false, ..Default::default() },
        )
        .unwrap()
        .0;
        assert_eq!(groups, baseline);
        assert_eq!(stats.agg_count(AggStrategy::RunWise), 0);
        assert_eq!(stats.selection_count(SelectionStrategy::RunSpan), 0);
    }

    #[test]
    fn parallel_morsel_scan_matches_serial() {
        let t = table(20_000, 6000); // 4 segments, uneven tail
        let expr = v_expr(&t);
        let serial_opts =
            ScanOptions { parallel: false, batch_rows: 512, ..ScanOptions::default() };
        let (serial, _, _) = scan_table(
            &t,
            None,
            &[(0, LogicalType::Str)],
            std::slice::from_ref(&expr),
            &[],
            &serial_opts,
        )
        .unwrap();
        for threads in [2usize, 3, 8] {
            let opts = ScanOptions {
                parallel: true,
                threads: Some(threads),
                batch_rows: 512,
                morsel_rows: 1024,
                ..ScanOptions::default()
            };
            let (par, stats, _) = scan_table(
                &t,
                None,
                &[(0, LogicalType::Str)],
                std::slice::from_ref(&expr),
                &[],
                &opts,
            )
            .unwrap();
            assert_eq!(par, serial, "threads={threads}");
            assert_eq!(stats.pool_workers, threads);
            assert!(stats.morsels_scanned >= 20_000 / 1024, "{stats:?}");
        }
    }

    #[test]
    fn invalid_options_rejected_with_typed_errors() {
        let t = table(10, 10);
        let expr = v_expr(&t);
        for (opts, option) in [
            (ScanOptions { batch_rows: 0, ..Default::default() }, "batch_rows"),
            (ScanOptions { morsel_rows: 0, ..Default::default() }, "morsel_rows"),
            (ScanOptions { threads: Some(0), ..Default::default() }, "threads"),
            (
                ScanOptions { time_budget: Some(std::time::Duration::ZERO), ..Default::default() },
                "time_budget",
            ),
            (ScanOptions { mem_budget: Some(0), ..Default::default() }, "mem_budget"),
        ] {
            let err =
                scan_table(&t, None, &[], std::slice::from_ref(&expr), &[], &opts).unwrap_err();
            assert!(
                matches!(err, EngineError::InvalidOptions { option: o, .. } if o == option),
                "{err:?}"
            );
        }
    }

    #[test]
    fn scheduler_steals_from_hot_segment() {
        let t = table(4000, 1000);
        let segs: Vec<(u32, &Segment)> =
            t.segments().iter().enumerate().map(|(i, s)| (i as u32, s)).collect();
        let sched = MorselScheduler::new(&segs, 64);
        let mut claimed_rows = 0usize;
        let mut steals = 0usize;
        // Worker 3's home partition is the last segment; drain everything
        // through it serially to exercise the steal path.
        let mut last = None;
        while let Some(c) = sched.claim(3, 4, &mut last) {
            claimed_rows += c.range.len;
            steals += c.stolen as usize;
        }
        assert_eq!(claimed_rows, 4000);
        assert!(steals > 0, "worker must have stolen from other partitions");
    }

    /// Pins the [`plan_segments`] extraction: admission planning is callable
    /// standalone, accounts its stats, and propagates plan-time errors — the
    /// coordinator relies on that to close the `Phase::Plan` span on the
    /// planning *result* before any error propagates.
    #[test]
    fn plan_segments_accounts_stats_and_propagates_errors() {
        let t = table(1000, 300);
        let expr = v_expr(&t);
        let governor = Governor::new(None, None, None);
        let mut stats = ExecStats::default();
        let planned = plan_segments(
            &t,
            None,
            &[(0, LogicalType::Str)],
            std::slice::from_ref(&expr),
            &[],
            &governor,
            &mut stats,
        )
        .unwrap();
        assert_eq!(planned.len(), 4);
        assert_eq!(stats.segments_scanned, 4);
        assert_eq!(stats.rows_scanned, 1000);

        let mut b =
            TableBuilder::with_segment_rows(vec![ColumnSpec::new("v", LogicalType::I64)], 1000);
        for _ in 0..10 {
            b.push_row(vec![Value::I64(i64::MAX / 4)]);
        }
        let t2 = b.finish();
        let sq = Expr::col("v").mul(Expr::col("v")).resolve(&|n| t2.column_index(n)).unwrap();
        let mut stats2 = ExecStats::default();
        let err =
            plan_segments(&t2, None, &[], std::slice::from_ref(&sq), &[], &governor, &mut stats2)
                .unwrap_err();
        assert!(matches!(err, EngineError::PotentialOverflow { aggregate: 0 }), "{err:?}");
    }

    /// Pins the [`SegScan::scan_batches`] extraction: when the governor trips
    /// at a batch checkpoint, [`SegScan::process_range`] still closes the
    /// `Phase::SegmentScan` span around the failed batch loop.
    #[test]
    fn segment_scan_span_closes_when_the_governor_cancels_mid_scan() {
        let t = table(1000, 1000);
        let expr = v_expr(&t);
        let token = crate::governor::CancelToken::new();
        token.cancel();
        let opts = ScanOptions { cancel: Some(token), ..Default::default() };
        let governor = Governor::new(opts.cancel.clone(), None, None);
        let ctx = ScanCtx {
            filter: None,
            group_cols: &[(0, LogicalType::Str)],
            sum_exprs: std::slice::from_ref(&expr),
            mm_exprs: &[],
            options: &opts,
            governor: &governor,
        };
        let seg = &t.segments()[0];
        let mut scan = SegScan::plan(0, seg, &ctx).unwrap();
        let mut tracer = Tracer::new(ProfileLevel::Spans, 0);
        let err = scan.process_range(0, seg.num_rows(), NO_ID, false, &mut tracer).unwrap_err();
        assert!(matches!(err, EngineError::Cancelled), "{err:?}");
        let mut profile = QueryProfile::new(ProfileLevel::Spans);
        profile.absorb(tracer);
        assert_eq!(profile.phase(Phase::SegmentScan).count, 1, "{:?}", profile.phases);
    }
}
