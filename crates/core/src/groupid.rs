//! The Group ID Mapper (§3, §5).
//!
//! "The Group ID Mapper takes in the group by columns specified in the
//! query and produces a single vector of integer group ids. It replaces
//! the hash table lookup step in a classical implementation of aggregation.
//! ... dictionary encoded data provide the group id mapper with a perfect
//! collision-free hashing."
//!
//! Two paths exist per segment:
//!
//! * **Narrow** — every group-by column exposes dense small codes
//!   (dictionary ids, or frame-of-reference values with a small range), and
//!   the combined group domain (plus one special-group slot, §4.3) fits in
//!   a `u8`. Group ids are produced by unpacking codes and radix-combining
//!   them — no hashing, no lookups. This is the path all SIMD aggregation
//!   strategies require.
//! * **Wide** — anything else. Keys are decoded per row and densely
//!   remapped through a hash table; aggregation falls back to scalar
//!   kernels over `u32` group ids.

use std::collections::HashMap;

use bipie_columnstore::encoding::{EncodedColumn, ForBitPackColumn};
use bipie_columnstore::{LogicalType, Segment, Value};
use bipie_toolbox::bitpack::PackedVec;
use bipie_toolbox::SimdLevel;

use crate::error::{EngineError, Result};

/// Maximum combined group-domain size for the narrow path: group ids plus
/// the special group must fit in `u8` (§2.2's 256-value simplification).
pub const NARROW_GROUP_LIMIT: usize = 255;

/// Debug-build check that every wide-path (`u32`) group id is strictly below
/// `num_groups` — the `u32` counterpart of
/// `bipie_toolbox::agg::debug_assert_group_ids`, which covers the narrow
/// `u8` path. The scalar wide-path accumulators index by group id without
/// per-row bounds checks.
#[inline]
pub fn debug_assert_group_ids_u32(gids: &[u32], num_groups: usize) {
    debug_assert!(
        gids.iter().all(|&g| (g as usize) < num_groups),
        "wide group id {} out of range ({num_groups} groups)",
        gids.iter().copied().max().unwrap_or(0)
    );
}

/// One group-by column viewed as a dense code stream.
#[derive(Debug)]
enum NarrowCol<'a> {
    /// String dictionary codes, with the dictionary pre-materialized to
    /// shared [`Value`]s so reconstructing a group key bumps a refcount
    /// instead of re-allocating the string bytes.
    StrDict { dict: Vec<Value>, codes: &'a PackedVec },
    /// Integer dictionary codes.
    IntDict { dict: &'a [i64], codes: &'a PackedVec, ty: LogicalType },
    /// Frame-of-reference values with a small range: the normalized value
    /// *is* the code. `card` comes from segment metadata (`max - min + 1`).
    BitPack { col: &'a ForBitPackColumn, ty: LogicalType, card: usize },
}

impl NarrowCol<'_> {
    fn cardinality(&self) -> usize {
        match self {
            NarrowCol::StrDict { dict, .. } => dict.len().max(1),
            NarrowCol::IntDict { dict, .. } => dict.len().max(1),
            NarrowCol::BitPack { card, .. } => *card,
        }
    }

    fn codes(&self) -> &PackedVec {
        match self {
            NarrowCol::StrDict { codes, .. } => codes,
            NarrowCol::IntDict { codes, .. } => codes,
            NarrowCol::BitPack { col, .. } => col.normalized(),
        }
    }

    fn key_of(&self, code: usize) -> Value {
        match self {
            NarrowCol::StrDict { dict, .. } => dict[code].clone(),
            NarrowCol::IntDict { dict, ty, .. } => Value::from_storage_i64(*ty, dict[code]),
            NarrowCol::BitPack { col, ty, .. } => {
                Value::from_storage_i64(*ty, col.reference() + code as i64)
            }
        }
    }
}

/// Narrow-path group-id mapper for one segment.
#[derive(Debug)]
pub struct NarrowMapper<'a> {
    cols: Vec<NarrowCol<'a>>,
    num_groups: usize,
}

impl NarrowMapper<'_> {
    /// Upper bound on distinct group ids in this segment (product of the
    /// per-column code cardinalities; 1 when there is no GROUP BY).
    pub fn num_groups(&self) -> usize {
        self.num_groups
    }

    /// Bit width of the widest group-by code stream (drives the selection
    /// strategy's bit-width parameter when no aggregate dominates).
    pub fn code_bits(&self) -> u8 {
        self.cols.iter().map(|c| c.codes().bits()).max().unwrap_or(1)
    }

    /// Produce group ids for batch rows `[start, start+len)` into `out`.
    pub fn extract_batch(
        &self,
        start: usize,
        len: usize,
        out: &mut Vec<u8>,
        scratch: &mut Vec<u8>,
        level: SimdLevel,
    ) {
        let Some((first, rest)) = self.cols.split_first() else {
            out.clear();
            out.resize(len, 0);
            return; // no GROUP BY: everything is group 0
        };
        out.resize(len, 0);
        first.codes().unpack_into_u8(start, out, level);
        for col in rest {
            let card = col.cardinality() as u8;
            scratch.resize(len, 0);
            col.codes().unpack_into_u8(start, scratch, level);
            // Radix combine; the narrow-limit check guarantees no overflow.
            bipie_toolbox::radix::fused_scale_add_u8(out, scratch, card, level);
        }
        bipie_toolbox::agg::debug_assert_group_ids(out, self.num_groups);
    }

    /// Reconstruct the group-by key values for a group id.
    pub fn group_key(&self, gid: usize) -> Vec<Value> {
        let mut parts = Vec::with_capacity(self.cols.len());
        let mut rest = gid;
        for col in self.cols.iter().rev() {
            let card = col.cardinality();
            parts.push(col.key_of(rest % card));
            rest /= card;
        }
        debug_assert_eq!(rest, 0, "group id out of domain");
        parts.reverse();
        parts
    }
}

/// Wide-path mapper: dense remap through a hash table, `u32` group ids.
#[derive(Debug)]
pub struct WideMapper<'a> {
    cols: Vec<(&'a EncodedColumn, LogicalType)>,
    map: HashMap<Vec<i64>, u32>,
    /// Per group id, the storage-key tuple (str columns store dict codes).
    keys: Vec<Vec<i64>>,
}

impl<'a> WideMapper<'a> {
    /// Group count discovered so far.
    pub fn num_groups(&self) -> usize {
        self.keys.len()
    }

    /// Produce group ids for batch rows `[start, start+len)`, assigning new
    /// ids in first-seen order.
    pub fn extract_batch(
        &mut self,
        start: usize,
        len: usize,
        out: &mut Vec<u32>,
        scratch: &mut Vec<Vec<i64>>,
    ) {
        out.clear();
        out.resize(len, 0);
        // Decode each group-by column's storage values (codes for strings).
        scratch.resize(self.cols.len(), Vec::new());
        for ((col, _), buf) in self.cols.iter().zip(scratch.iter_mut()) {
            buf.clear();
            buf.resize(len, 0);
            match col {
                EncodedColumn::StrDict(d) => {
                    for (k, slot) in buf.iter_mut().enumerate() {
                        *slot = d.codes().get(start + k) as i64;
                    }
                }
                other => other.decode_i64_into(start, buf),
            }
        }
        let mut key = Vec::with_capacity(self.cols.len());
        for (i, o) in out.iter_mut().enumerate() {
            key.clear();
            key.extend(scratch.iter().map(|buf| buf[i]));
            if let Some(&gid) = self.map.get(&key) {
                *o = gid;
            } else {
                let gid = self.keys.len() as u32;
                self.map.insert(key.clone(), gid);
                self.keys.push(key.clone());
                *o = gid;
            }
        }
        debug_assert_group_ids_u32(out, self.keys.len());
    }

    /// Reconstruct the group-by key values for a group id.
    pub fn group_key(&self, gid: usize) -> Vec<Value> {
        self.keys[gid]
            .iter()
            .zip(&self.cols)
            .map(|(&stored, (col, ty))| match col {
                EncodedColumn::StrDict(d) => Value::Str(d.dict()[stored as usize].as_str().into()),
                _ => Value::from_storage_i64(*ty, stored),
            })
            .collect()
    }
}

/// The per-segment mapper, chosen from encodings and metadata.
#[derive(Debug)]
pub enum SegmentGroupMapper<'a> {
    /// Dense `u8` path (SIMD aggregation eligible).
    Narrow(NarrowMapper<'a>),
    /// Hash-remap `u32` fallback.
    Wide(WideMapper<'a>),
}

/// Plan the group-id mapper for one segment. `group_cols` lists the
/// group-by columns as `(column index, logical type)`.
pub fn plan_segment_mapper<'a>(
    seg: &'a Segment,
    group_cols: &[(usize, LogicalType)],
) -> Result<SegmentGroupMapper<'a>> {
    let mut narrow_cols = Vec::with_capacity(group_cols.len());
    let mut narrow_ok = true;
    for &(idx, ty) in group_cols {
        match seg.column(idx) {
            EncodedColumn::StrDict(d) => {
                // Materialize the dictionary once per segment plan: every
                // group-key reconstruction then shares these allocations.
                let dict = d.dict().iter().map(|s| Value::Str(s.as_str().into())).collect();
                narrow_cols.push(NarrowCol::StrDict { dict, codes: d.codes() })
            }
            EncodedColumn::IntDict(d) => {
                narrow_cols.push(NarrowCol::IntDict { dict: d.dict(), codes: d.codes(), ty })
            }
            EncodedColumn::BitPack(c)
                if seg.meta(idx).range() < NARROW_GROUP_LIMIT as u64 && c.bits() <= 8 =>
            {
                narrow_cols.push(NarrowCol::BitPack {
                    col: c,
                    ty,
                    card: seg.meta(idx).range() as usize + 1,
                })
            }
            _ => {
                narrow_ok = false;
                break;
            }
        }
    }
    if narrow_ok {
        let mut product = 1usize;
        for col in &narrow_cols {
            product = product.saturating_mul(col.cardinality());
        }
        if product <= NARROW_GROUP_LIMIT {
            return Ok(SegmentGroupMapper::Narrow(NarrowMapper {
                cols: narrow_cols,
                num_groups: product,
            }));
        }
    }
    // Wide fallback: any encoding works, strings must be dict (always true).
    let cols: Vec<(&EncodedColumn, LogicalType)> =
        group_cols.iter().map(|&(idx, ty)| (seg.column(idx), ty)).collect();
    for (col, ty) in &cols {
        if *ty == LogicalType::Str && !matches!(col, EncodedColumn::StrDict(_)) {
            return Err(EngineError::Unsupported("string column without dictionary".into()));
        }
    }
    Ok(SegmentGroupMapper::Wide(WideMapper { cols, map: HashMap::new(), keys: Vec::new() }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bipie_columnstore::{ColumnSpec, TableBuilder};

    fn table(rows: usize, wide: bool) -> bipie_columnstore::Table {
        let mut b = TableBuilder::with_segment_rows(
            vec![
                ColumnSpec::new("flag", LogicalType::Str),
                ColumnSpec::new("status", LogicalType::I64),
                ColumnSpec::new("wide", LogicalType::I64),
            ],
            1 << 20,
        );
        for i in 0..rows {
            b.push_row(vec![
                Value::Str(["A", "N", "R"][i % 3].into()),
                Value::I64((i % 2) as i64),
                Value::I64(if wide { (i * 977) as i64 } else { (i % 4) as i64 }),
            ]);
        }
        b.finish()
    }

    #[test]
    fn single_string_column_uses_dict_codes() {
        let t = table(100, false);
        let seg = &t.segments()[0];
        let mapper = plan_segment_mapper(seg, &[(0, LogicalType::Str)]).unwrap();
        let SegmentGroupMapper::Narrow(m) = mapper else { panic!("expected narrow") };
        assert_eq!(m.num_groups(), 3);
        let mut out = Vec::new();
        let mut scratch = Vec::new();
        m.extract_batch(0, 100, &mut out, &mut scratch, SimdLevel::detect());
        for (i, &g) in out.iter().enumerate() {
            // dict is sorted: A=0, N=1, R=2
            assert_eq!(g as usize, i % 3, "i={i}");
        }
        assert_eq!(m.group_key(0), vec![Value::Str("A".into())]);
        assert_eq!(m.group_key(2), vec![Value::Str("R".into())]);
    }

    #[test]
    fn multi_column_radix_combines() {
        let t = table(120, false);
        let seg = &t.segments()[0];
        let mapper =
            plan_segment_mapper(seg, &[(0, LogicalType::Str), (1, LogicalType::I64)]).unwrap();
        let SegmentGroupMapper::Narrow(m) = mapper else { panic!("expected narrow") };
        assert_eq!(m.num_groups(), 6);
        let mut out = Vec::new();
        let mut scratch = Vec::new();
        m.extract_batch(0, 120, &mut out, &mut scratch, SimdLevel::detect());
        for (i, &g) in out.iter().enumerate() {
            let flag_code = i % 3; // A=0 N=1 R=2 sorted
            let status = i % 2;
            assert_eq!(g as usize, flag_code * 2 + status, "i={i}");
        }
        // Key reconstruction inverts the radix combine.
        assert_eq!(m.group_key(3), vec![Value::Str("N".into()), Value::I64(1)]);
        assert_eq!(m.group_key(4), vec![Value::Str("R".into()), Value::I64(0)]);
    }

    #[test]
    fn empty_group_by_is_single_group() {
        let t = table(10, false);
        let seg = &t.segments()[0];
        let mapper = plan_segment_mapper(seg, &[]).unwrap();
        let SegmentGroupMapper::Narrow(m) = mapper else { panic!("expected narrow") };
        assert_eq!(m.num_groups(), 1);
        let mut out = Vec::new();
        let mut scratch = Vec::new();
        m.extract_batch(0, 10, &mut out, &mut scratch, SimdLevel::detect());
        assert!(out.iter().all(|&g| g == 0));
        assert!(m.group_key(0).is_empty());
    }

    #[test]
    fn wide_domain_falls_back() {
        let t = table(1000, true);
        let seg = &t.segments()[0];
        let mapper = plan_segment_mapper(seg, &[(2, LogicalType::I64)]).unwrap();
        let SegmentGroupMapper::Wide(mut m) = mapper else { panic!("expected wide") };
        let mut out = Vec::new();
        let mut scratch = Vec::new();
        m.extract_batch(0, 1000, &mut out, &mut scratch);
        // Dense first-seen ids; reconstructable keys.
        let max = *out.iter().max().unwrap() as usize;
        assert_eq!(m.num_groups(), max + 1);
        for (i, &g) in out.iter().enumerate().take(20) {
            assert_eq!(m.group_key(g as usize), vec![Value::I64((i * 977) as i64)]);
        }
    }

    #[test]
    fn bitpack_small_range_is_narrow() {
        let t = table(100, false);
        let seg = &t.segments()[0];
        // "wide" column here has values 0..4 -> narrow-capable bitpack/dict.
        let mapper = plan_segment_mapper(seg, &[(2, LogicalType::I64)]).unwrap();
        assert!(matches!(mapper, SegmentGroupMapper::Narrow(_)));
    }

    #[test]
    fn product_overflow_goes_wide() {
        // 3 * 2 * many > 255 -> wide.
        let t = table(4000, true);
        let seg = &t.segments()[0];
        let mapper = plan_segment_mapper(
            seg,
            &[(0, LogicalType::Str), (1, LogicalType::I64), (2, LogicalType::I64)],
        )
        .unwrap();
        assert!(matches!(mapper, SegmentGroupMapper::Wide(_)));
    }
}
