//! The persistent scan worker pool.
//!
//! Queries used to spawn one OS thread per segment per query and join at a
//! barrier; this module replaces that with a process-wide, lazily
//! initialized pool of workers that is created on the first parallel scan
//! and reused by every later one. A [`run`](WorkerPool::run) call executes
//! one *fork-join region*: the calling thread participates as worker 0,
//! pool threads pick up the remaining worker indices, and the call returns
//! only after every participant has finished — panics included, which are
//! captured and surfaced as a value instead of aborting the process.
//!
//! Design notes (DESIGN.md §8):
//!
//! * **Lifecycle** — workers are spawned on demand up to the largest
//!   parallelism any run has requested, then parked on a condvar between
//!   runs. They live for the rest of the process; there is no shutdown
//!   protocol (the OS reclaims parked threads at exit).
//! * **Borrowed task bodies** — the pool executes `&(dyn Fn(usize) + Sync)`
//!   bodies that borrow the caller's stack (segments, filters, result
//!   slots). The lifetime is erased to hand the reference to long-lived
//!   workers; soundness rests on the strict join: `run` does not return —
//!   even on panic — until every worker that received the reference has
//!   dropped it (see the SAFETY comment in [`WorkerPool::run`]).
//! * **Memory ordering** — job hand-off and completion both go through a
//!   `Mutex`/`Condvar` pair, whose lock/unlock edges give the necessary
//!   happens-before: everything a worker wrote before decrementing the
//!   pending count is visible to the caller after the join.
//!
//! `run` is **not reentrant**: a task body must not call `run` again (the
//! nested region could wait on workers that are all busy running the outer
//! region). The scan driver only ever runs one region at a time per query
//! phase, and concurrent queries are fine — regions interleave over the
//! shared queue.
//!
//! * **Shared scheduling** — concurrent queries submit jobs under a
//!   [`QueryTag`]; the intake is a set of per-query FIFO queues drained by
//!   weighted fair queuing (`SchedQueues`), so a heavy query cannot
//!   starve a light one and tenant weights bias pool bandwidth
//!   proportionally. Whatever the pool does, every query still progresses:
//!   the caller always executes worker 0's slice on its own thread
//!   (DESIGN.md §15).

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};

/// A captured worker panic payload.
pub type PanicPayload = Box<dyn Any + Send + 'static>;

/// Scheduler identity of the query a fork-join region serves: which
/// per-query queue its jobs land in, and that queue's fair-share weight.
/// Standalone `run` calls use the default tag (query 0, weight 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryTag {
    /// Engine-assigned query id; 0 is the shared "untagged" queue.
    pub query: u64,
    /// Fair-share weight (≥ 1): a weight-2 query receives twice the pool
    /// dispatches of a weight-1 query under contention.
    pub weight: u32,
}

impl Default for QueryTag {
    fn default() -> Self {
        QueryTag { query: 0, weight: 1 }
    }
}

/// Cumulative shared-scheduler counters (diagnostics and telemetry).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Jobs handed to workers since process start.
    pub jobs_dispatched: u64,
    /// Dispatches that switched to a different query than the previous
    /// dispatch — a proxy for how finely concurrent queries interleave.
    pub query_switches: u64,
}

/// The virtual-time quantum one dispatch charges a weight-1 queue. Only
/// ratios matter; the constant keeps integer division by the weight exact
/// for realistic weights.
const VTIME_QUANTUM: u64 = 1 << 20;

/// Weighted-fair-queuing intake: one FIFO per active query, drained in
/// virtual-time order. Pure data structure — the pool guards it with the
/// intake mutex; generic over the job type so the policy is unit-testable
/// without threads.
struct SchedQueues<T> {
    /// Per-query queues; empty queues are pruned on dispatch.
    queues: Vec<SchedQueue<T>>,
    /// Virtual clock: the start tag of the last dispatched queue. New
    /// queues join at this value so they neither starve nor get credit
    /// for time they spent absent.
    vclock: u64,
    stats: SchedStats,
    /// Query id of the most recent dispatch (for the switch counter).
    last_query: Option<u64>,
}

struct SchedQueue<T> {
    query: u64,
    weight: u32,
    /// Virtual finish time of the work dispatched from this queue so far.
    vtime: u64,
    jobs: VecDeque<T>,
}

impl<T> SchedQueues<T> {
    fn new() -> Self {
        SchedQueues {
            queues: Vec::new(),
            vclock: 0,
            stats: SchedStats::default(),
            last_query: None,
        }
    }

    /// Append a job to its query's queue, creating the queue at the
    /// current virtual clock if the query has none.
    fn push(&mut self, tag: QueryTag, job: T) {
        let weight = tag.weight.max(1);
        match self.queues.iter_mut().find(|q| q.query == tag.query) {
            Some(q) => {
                q.weight = weight;
                q.jobs.push_back(job);
            }
            None => self.queues.push(SchedQueue {
                query: tag.query,
                weight,
                vtime: self.vclock,
                jobs: VecDeque::from([job]),
            }),
        }
    }

    /// Dispatch the next job: the queue with the smallest virtual finish
    /// time wins (query id breaks ties deterministically), then pays for
    /// the dispatch inversely to its weight.
    fn pop(&mut self) -> Option<T> {
        let idx = self
            .queues
            .iter()
            .enumerate()
            .min_by_key(|(_, q)| (q.vtime, q.query))
            .map(|(i, _)| i)?;
        let q = &mut self.queues[idx];
        // PANIC: queues are pruned when drained, so every retained queue
        // holds at least one job.
        let job = q.jobs.pop_front().expect("scheduler queues are never retained empty");
        self.vclock = q.vtime;
        q.vtime += (VTIME_QUANTUM / u64::from(q.weight)).max(1);
        self.stats.jobs_dispatched += 1;
        if self.last_query != Some(q.query) {
            self.stats.query_switches += 1;
            self.last_query = Some(q.query);
        }
        if q.jobs.is_empty() {
            self.queues.swap_remove(idx);
        }
        Some(job)
    }
}

/// What a completed fork-join region reports back.
#[derive(Debug, Clone, Copy)]
pub struct RunReport {
    /// Worker indices that participated (caller included).
    pub workers: usize,
    /// `true` when the run was served entirely by already-spawned workers
    /// (i.e. the persistent pool was reused rather than grown).
    pub reused_pool: bool,
}

/// The task body with its lifetime erased; see the SAFETY note in
/// [`WorkerPool::run`] for why the `'static` claim is sound.
type ErasedBody = &'static (dyn Fn(usize) + Sync);

/// One queued worker assignment.
struct Job {
    body: ErasedBody,
    index: usize,
    run: Arc<RunState>,
}

/// Join state for one fork-join region.
struct RunState {
    /// Workers (excluding the caller) that have not finished yet.
    // LOCK: leaf — guards only this counter; held briefly by workers at
    // completion and by the caller across the `done` wait, never together
    // with `panic` or the pool queue.
    pending: Mutex<usize>,
    /// Signalled when `pending` reaches zero.
    // LOCK: waited on exclusively with the `pending` guard.
    done: Condvar,
    /// First captured panic payload from any pool worker.
    // LOCK: leaf — first-panic slot; held only to store or take the
    // payload, never across user code or another acquisition.
    panic: Mutex<Option<PanicPayload>>,
}

struct PoolShared {
    // LOCK: leaf — job intake; held only to push/pop jobs through the
    // fair scheduler, released before `work` is notified and before any
    // job body runs.
    queue: Mutex<SchedQueues<Job>>,
    /// Signalled when a job is queued.
    // LOCK: waited on exclusively with the `queue` guard.
    work: Condvar,
}

/// The process-wide scan worker pool.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    /// Pool threads spawned so far (grows monotonically, never shrinks).
    // LOCK: leaf — serializes pool growth; no other lock and no user code
    // while held (thread spawning only).
    spawned: Mutex<usize>,
    /// Completed `run` regions (diagnostics).
    runs: AtomicUsize,
}

/// Locks a mutex, ignoring poisoning: the pool's invariants hold even if a
/// participant panicked while another thread held the lock, because no lock
/// is held across user code.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // LOCK: generic acquisition helper — each call site documents its own
    // guard lifetime; poisoning is ignored per the fn contract above.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl WorkerPool {
    /// The lazily-initialized global pool.
    pub fn global() -> &'static WorkerPool {
        static POOL: OnceLock<WorkerPool> = OnceLock::new();
        POOL.get_or_init(|| WorkerPool {
            shared: Arc::new(PoolShared {
                queue: Mutex::new(SchedQueues::new()),
                work: Condvar::new(),
            }),
            spawned: Mutex::new(0),
            runs: AtomicUsize::new(0),
        })
    }

    /// Completed fork-join regions since process start (diagnostics).
    pub fn completed_runs(&self) -> usize {
        // ORDERING: Relaxed — diagnostics counter; readers want a number,
        // not a synchronization point.
        self.runs.load(Ordering::Relaxed)
    }

    /// Cumulative shared-scheduler counters since process start.
    pub fn sched_stats(&self) -> SchedStats {
        // LOCK: `queue` read-only peek; temp guard dies at `;`.
        lock(&self.shared.queue).stats
    }

    /// Execute `body(i)` for `i in 0..workers` across the pool, the calling
    /// thread serving as worker 0. Returns when every worker has finished.
    /// If any worker (or the caller's own slice) panicked, the first payload
    /// is returned as `Err` — the process is never taken down by a worker.
    pub fn run(
        &self,
        workers: usize,
        body: &(dyn Fn(usize) + Sync),
    ) -> Result<RunReport, PanicPayload> {
        self.run_tagged(QueryTag::default(), workers, body)
    }

    /// [`run`](WorkerPool::run), with the region's jobs scheduled under
    /// `tag`'s per-query queue and fair-share weight. Concurrent regions
    /// with distinct tags interleave over the pool in weighted-fair order;
    /// the calling thread still serves worker 0 directly, so a region
    /// finishes even when every pool worker is busy with other queries.
    pub fn run_tagged(
        &self,
        tag: QueryTag,
        workers: usize,
        body: &(dyn Fn(usize) + Sync),
    ) -> Result<RunReport, PanicPayload> {
        let workers = workers.max(1);
        if workers == 1 {
            // ORDERING: Relaxed — `runs` is a diagnostics counter; fork-join
            // synchronization happens via the run-state mutex and condvar,
            // never through this atomic.
            let reused = self.runs.load(Ordering::Relaxed) > 0;
            catch_unwind(AssertUnwindSafe(|| body(0)))?;
            // ORDERING: Relaxed — same diagnostics counter as above.
            self.runs.fetch_add(1, Ordering::Relaxed);
            return Ok(RunReport { workers: 1, reused_pool: reused });
        }

        let reused_pool = self.ensure_spawned(workers - 1);
        let run = Arc::new(RunState {
            pending: Mutex::new(workers - 1),
            done: Condvar::new(),
            panic: Mutex::new(None),
        });

        // SAFETY: `body` is only ever invoked by jobs tied to `run`, and
        // this function does not return before `run.pending` reaches zero
        // (the wait below is unconditional; worker panics are caught and
        // still decrement the count). Therefore no use of the erased
        // reference outlives the real borrow, and the `'static` claim made
        // to the long-lived worker threads is never observable.
        let erased = unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), ErasedBody>(body) };
        {
            // LOCK: `queue` held only for the push loop; released (block
            // end) before `work` is notified and before any job runs.
            let mut queue = lock(&self.shared.queue);
            for index in 1..workers {
                queue.push(tag, Job { body: erased, index, run: Arc::clone(&run) });
            }
        }
        self.shared.work.notify_all();

        // The caller is worker 0; its panic is deferred until after the
        // join so the borrow stays valid for the pool workers either way.
        let caller_result = catch_unwind(AssertUnwindSafe(|| body(0)));

        // LOCK: `pending` held across the join wait below; it is the only
        // guard live in this region.
        let mut pending = lock(&run.pending);
        while *pending > 0 {
            // LOCK: waits on `done` with the `pending` guard it consumes
            // and returns; workers signal after decrementing to zero.
            pending = run.done.wait(pending).unwrap_or_else(PoisonError::into_inner);
        }
        drop(pending);

        // ORDERING: Relaxed — counted after the condvar join above, which
        // already provides the happens-before edge; the counter itself is
        // diagnostics only.
        self.runs.fetch_add(1, Ordering::Relaxed);
        caller_result?;
        // LOCK: `panic` is a leaf taken after the join; the temporary guard
        // dies at the end of this condition.
        if let Some(payload) = lock(&run.panic).take() {
            return Err(payload);
        }
        Ok(RunReport { workers, reused_pool })
    }

    /// Make sure at least `needed` pool threads exist; returns `true` when
    /// they all already did (pool reuse).
    fn ensure_spawned(&self, needed: usize) -> bool {
        // LOCK: `spawned` held across thread creation; no other lock is
        // acquired and no user code runs while it is live.
        let mut spawned = lock(&self.spawned);
        if *spawned >= needed {
            return true;
        }
        while *spawned < needed {
            let shared = Arc::clone(&self.shared);
            let worker_id = *spawned;
            std::thread::Builder::new()
                .name(format!("bipie-scan-{worker_id}"))
                .spawn(move || worker_loop(shared))
                // PANIC: spawn fails only on OS thread exhaustion, which is
                // unrecoverable for the engine; surfacing it here beats
                // deadlocking on a pool that silently never grew.
                .expect("spawning a scan worker thread");
            *spawned += 1;
        }
        false
    }
}

/// The body each pool thread parks in between fork-join regions.
fn worker_loop(shared: Arc<PoolShared>) {
    loop {
        let job = {
            // LOCK: `queue` held while parked; dropped at block end, before
            // the claimed job body runs.
            let mut queue = lock(&shared.queue);
            loop {
                if let Some(job) = queue.pop() {
                    break job;
                }
                // LOCK: waits on `work` with the `queue` guard it consumes
                // and returns; `run()` notifies after queueing jobs.
                queue = shared.work.wait(queue).unwrap_or_else(PoisonError::into_inner);
            }
        };
        // Run the slice; capture (never propagate) panics so a poisoned
        // scan fails its query, not the host process or this worker.
        let result = catch_unwind(AssertUnwindSafe(|| (job.body)(job.index)));
        if let Err(payload) = result {
            // LOCK: `panic` leaf — stores the first payload only; released
            // at block end, before `pending` is touched.
            let mut slot = lock(&job.run.panic);
            slot.get_or_insert(payload);
        }
        // LOCK: `pending` leaf — decremented after the job completed;
        // signals `done` at zero and is dropped right after.
        let mut pending = lock(&job.run.pending);
        *pending -= 1;
        if *pending == 0 {
            job.run.done.notify_all();
        }
        drop(pending);
    }
}

/// Render a panic payload for an error message (`&str` and `String`
/// payloads verbatim, anything else a placeholder).
pub fn panic_message(payload: &PanicPayload) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked with a non-string payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn runs_every_worker_index_exactly_once() {
        let pool = WorkerPool::global();
        for workers in [1usize, 2, 3, 8] {
            let hits: Vec<AtomicUsize> = (0..workers).map(|_| AtomicUsize::new(0)).collect();
            let report = pool
                .run(workers, &|i| {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                })
                .expect("no panics");
            assert_eq!(report.workers, workers);
            for (i, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::Relaxed), 1, "worker {i} of {workers}");
            }
        }
    }

    #[test]
    fn borrowed_state_is_visible_after_join() {
        let pool = WorkerPool::global();
        let total = AtomicU64::new(0);
        let inputs: Vec<u64> = (0..1000).collect();
        pool.run(4, &|i| {
            let part: u64 = inputs.iter().skip(i).step_by(4).sum();
            total.fetch_add(part, Ordering::Relaxed);
        })
        .expect("no panics");
        assert_eq!(total.load(Ordering::Relaxed), 999 * 1000 / 2);
    }

    #[test]
    fn worker_panic_is_captured_not_fatal() {
        let pool = WorkerPool::global();
        let err = pool
            .run(3, &|i| {
                if i == 2 {
                    panic!("poisoned segment {i}");
                }
            })
            .expect_err("a worker panicked");
        assert_eq!(panic_message(&err), "poisoned segment 2");
        // The pool survives and serves the next run.
        let ok = pool.run(3, &|_| {}).expect("pool still works");
        assert!(ok.reused_pool);
    }

    #[test]
    fn caller_panic_is_captured_too() {
        let pool = WorkerPool::global();
        let err = pool.run(2, &|i| assert_ne!(i, 0, "caller slice fails")).expect_err("panicked");
        assert!(panic_message(&err).contains("caller slice fails"));
        pool.run(2, &|_| {}).expect("pool still works");
    }

    #[test]
    fn pool_reuse_is_reported() {
        let pool = WorkerPool::global();
        pool.run(2, &|_| {}).expect("warm-up");
        let report = pool.run(2, &|_| {}).expect("reuse");
        assert!(report.reused_pool);
        assert!(pool.completed_runs() >= 2);
    }

    fn tag(query: u64, weight: u32) -> QueryTag {
        QueryTag { query, weight }
    }

    #[test]
    fn sched_fifo_within_one_query() {
        let mut s: SchedQueues<u32> = SchedQueues::new();
        for j in 0..5 {
            s.push(tag(1, 1), j);
        }
        let order: Vec<u32> = std::iter::from_fn(|| s.pop()).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
        assert_eq!(s.stats.jobs_dispatched, 5);
        assert_eq!(s.stats.query_switches, 1);
    }

    #[test]
    fn sched_equal_weights_alternate() {
        let mut s: SchedQueues<u64> = SchedQueues::new();
        for j in 0..4 {
            s.push(tag(1, 1), 100 + j);
            s.push(tag(2, 1), 200 + j);
        }
        let queries: Vec<u64> = std::iter::from_fn(|| s.pop()).map(|j| j / 100).collect();
        assert_eq!(queries, vec![1, 2, 1, 2, 1, 2, 1, 2]);
        assert_eq!(s.stats.query_switches, 8);
    }

    #[test]
    fn sched_weights_bias_dispatch_share() {
        let mut s: SchedQueues<u64> = SchedQueues::new();
        for j in 0..12 {
            s.push(tag(1, 1), 100 + j);
            s.push(tag(3, 3), 300 + j);
        }
        // Over the first 8 dispatches, the weight-3 query should receive
        // three times the service of the weight-1 query (6 vs 2).
        let first8: Vec<u64> = (0..8).map(|_| s.pop().expect("jobs queued") / 100).collect();
        assert_eq!(first8.iter().filter(|&&q| q == 3).count(), 6, "{first8:?}");
        assert_eq!(first8.iter().filter(|&&q| q == 1).count(), 2, "{first8:?}");
    }

    #[test]
    fn sched_late_query_joins_at_current_vclock() {
        let mut s: SchedQueues<u64> = SchedQueues::new();
        for j in 0..6 {
            s.push(tag(1, 1), 100 + j);
        }
        for _ in 0..4 {
            s.pop();
        }
        // A query arriving late must not get a backlog of virtual time to
        // burn (which would starve query 1), nor start in the future.
        for j in 0..3 {
            s.push(tag(2, 1), 200 + j);
        }
        let rest: Vec<u64> = std::iter::from_fn(|| s.pop()).map(|j| j / 100).collect();
        assert_eq!(rest, vec![2, 1, 2, 1, 2], "{rest:?}");
    }

    #[test]
    fn tagged_regions_run_and_count_switches() {
        let pool = WorkerPool::global();
        let before = pool.sched_stats();
        let hits = AtomicUsize::new(0);
        pool.run_tagged(tag(7, 2), 3, &|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        })
        .expect("no panics");
        assert_eq!(hits.load(Ordering::Relaxed), 3);
        let after = pool.sched_stats();
        assert!(after.jobs_dispatched >= before.jobs_dispatched + 2);
    }
}
