//! Runtime operator specialization (§3, §6.2).
//!
//! BIPie keeps several implementations of selection and aggregation and
//! picks between them at runtime:
//!
//! * the **aggregation strategy** is chosen *per segment*, from segment
//!   metadata (group-count upper bound, number of aggregates, input bit
//!   widths) plus an adaptive selectivity estimate;
//! * the **selection strategy** is chosen *per batch*, "based on the actual
//!   selectivity calculated after evaluating the filter for the batch".
//!
//! The chooser uses a small cost model whose shape follows the paper's
//! findings (Figures 7–10): gather wins at low selectivity with a
//! bit-width-dependent crossover against compaction; special-group wins
//! near full selectivity; in-register costs grow linearly in groups and
//! value width; multi-aggregate amortizes a fixed transpose over the
//! aggregate count; sort-based pays a fixed sort that shrinks per-aggregate
//! and with selectivity. Constants are configurable so ablation benchmarks
//! can probe the decision boundaries.

/// How rows rejected by the filter are removed from processing (§4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum SelectionStrategy {
    /// Gather selection (§4.2): index vector + SIMD gather of survivors.
    Gather = 0,
    /// Compacting selection (§4.1): unpack everything, left-pack survivors.
    Compact = 1,
    /// Special group assignment (§4.3): rejected rows join an extra group.
    SpecialGroup = 2,
    /// Run-span selection (DESIGN.md §13): the predicate is evaluated per
    /// RLE run and the selection stays run-granular — no per-row byte mask
    /// is materialized. Only the run-wise aggregation executor consumes it.
    RunSpan = 3,
}

impl SelectionStrategy {
    /// All selection strategies.
    pub const ALL: [SelectionStrategy; 4] = [
        SelectionStrategy::Gather,
        SelectionStrategy::Compact,
        SelectionStrategy::SpecialGroup,
        SelectionStrategy::RunSpan,
    ];

    /// The per-row (dense selection vector) strategies the generic batch
    /// executor understands. [`SelectionStrategy::RunSpan`] is excluded: it
    /// produces run-granular spans consumed only by the run-wise executor.
    pub const DENSE: [SelectionStrategy; 3] =
        [SelectionStrategy::Gather, SelectionStrategy::Compact, SelectionStrategy::SpecialGroup];

    /// Short label used in experiment output ("Gather", "Compact",
    /// "Special Group", "Run Span").
    pub fn label(self) -> &'static str {
        match self {
            SelectionStrategy::Gather => "Gather",
            SelectionStrategy::Compact => "Compact",
            SelectionStrategy::SpecialGroup => "Special Group",
            SelectionStrategy::RunSpan => "Run Span",
        }
    }
}

/// How grouped aggregates are computed (§5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum AggStrategy {
    /// Scalar fallback (§5.1; also the wide-group path).
    Scalar = 0,
    /// Sort-based SUM (§5.2).
    SortBased = 1,
    /// In-register virtual accumulator arrays (§5.3).
    InRegister = 2,
    /// Multi-aggregate horizontal SIMD (§5.4).
    MultiAggregate = 3,
    /// Run-wise aggregation on RLE data (DESIGN.md §13): per-run
    /// multiply-accumulate over run-span selections, O(runs) not O(rows).
    RunWise = 4,
}

impl AggStrategy {
    /// All aggregation strategies.
    pub const ALL: [AggStrategy; 5] = [
        AggStrategy::Scalar,
        AggStrategy::SortBased,
        AggStrategy::InRegister,
        AggStrategy::MultiAggregate,
        AggStrategy::RunWise,
    ];

    /// The strategies the generic (row-at-a-time batch) segment executor
    /// implements. [`AggStrategy::RunWise`] is excluded: it runs in a
    /// dedicated executor that consumes run spans instead of group ids.
    pub const DENSE: [AggStrategy; 4] = [
        AggStrategy::Scalar,
        AggStrategy::SortBased,
        AggStrategy::InRegister,
        AggStrategy::MultiAggregate,
    ];

    /// The three SIMD strategies evaluated in Figures 8–10.
    pub const SIMD: [AggStrategy; 3] =
        [AggStrategy::SortBased, AggStrategy::InRegister, AggStrategy::MultiAggregate];

    /// Short label used in experiment output ("Sort", "Register", "Multi",
    /// "Runwise").
    pub fn label(self) -> &'static str {
        match self {
            AggStrategy::Scalar => "Scalar",
            AggStrategy::SortBased => "Sort",
            AggStrategy::InRegister => "Register",
            AggStrategy::MultiAggregate => "Multi",
            AggStrategy::RunWise => "Runwise",
        }
    }
}

/// Tunable constants of the strategy cost model.
#[derive(Debug, Clone, PartialEq)]
pub struct StrategyConfig {
    /// Selectivity at or above which special-group selection is used.
    pub special_group_min_selectivity: f64,
    /// Gather-vs-compact crossover at 4-bit inputs (Figure 7: ~2%).
    pub gather_limit_base: f64,
    /// Crossover growth per input bit beyond 4 (Figure 7: ~38% at 21 bits).
    pub gather_limit_per_bit: f64,
    /// Scalar aggregation cost, cycles/row/agg.
    pub scalar_cost: f64,
    /// In-register: fixed cost per row per aggregate.
    pub inreg_base: f64,
    /// In-register: per-group cost factor, scaled by value width in bytes.
    pub inreg_per_group_per_byte: f64,
    /// Multi-aggregate: amortizable fixed cost per row.
    pub multi_fixed: f64,
    /// Multi-aggregate: marginal cost per row per aggregate.
    pub multi_per_agg: f64,
    /// Sort-based: sort cost per row (amortized over aggregates).
    pub sort_fixed: f64,
    /// Sort-based: additional sort cost per row at full selectivity.
    pub sort_fixed_per_selectivity: f64,
    /// Sort-based: per-aggregate gather-sum cost per row.
    pub sort_per_agg: f64,
}

impl Default for StrategyConfig {
    fn default() -> Self {
        StrategyConfig {
            special_group_min_selectivity: 0.6,
            gather_limit_base: 0.02,
            gather_limit_per_bit: 0.021,
            scalar_cost: 2.2,
            inreg_base: 0.35,
            inreg_per_group_per_byte: 0.035,
            multi_fixed: 1.8,
            multi_per_agg: 0.55,
            sort_fixed: 0.7,
            sort_fixed_per_selectivity: 1.5,
            sort_per_agg: 0.65,
        }
    }
}

/// Per-segment inputs to the aggregation-strategy choice.
#[derive(Debug, Clone)]
pub struct AggChoiceParams {
    /// Group count including the special-group slot when a filter may use
    /// special-group selection.
    pub num_groups_effective: usize,
    /// Number of SUM aggregates (COUNT(*) is tracked separately).
    pub num_sums: usize,
    /// Per-aggregate normalized input width in bytes (1, 2, 4, or 8).
    pub input_bytes: Vec<usize>,
    /// True if every sum input is a raw bit-packed column of <= 25 bits
    /// (the precondition for sort-based SIMD gather summation).
    pub all_packed_narrow: bool,
    /// Whether a multi-aggregate row layout exists for these widths.
    pub multi_layout_fits: bool,
    /// Adaptive selectivity estimate (1.0 when there is no filter).
    pub est_selectivity: f64,
    /// `Some(runs / rows)` when every aggregate input is an RLE column and
    /// the query shape admits the run-wise executor (single group, no
    /// deletions, span-eligible filter); `None` otherwise. The fraction is
    /// the run-wise path's work ratio: it touches O(runs) run headers where
    /// the dense strategies touch O(rows) values.
    pub runwise_runs_fraction: Option<f64>,
}

impl StrategyConfig {
    /// Selectivity below which gather beats compaction for the given input
    /// bit width (the Figure 7 crossover). Capped just below the special-
    /// group threshold: on post-Skylake cores gathers stay competitive to
    /// much higher selectivities than the paper's machine (see
    /// EXPERIMENTS.md on Figure 7), so compaction only wins a narrow band.
    pub fn gather_limit(&self, bits: u8) -> f64 {
        let cap = (self.special_group_min_selectivity - 0.05).max(self.gather_limit_base);
        (self.gather_limit_base + self.gather_limit_per_bit * (bits.saturating_sub(4)) as f64)
            .clamp(self.gather_limit_base, cap)
    }

    /// Choose the selection strategy for one batch from its measured
    /// selectivity and the dominant input bit width (§3, Figure 7).
    pub fn choose_selection(&self, selectivity: f64, bits: u8) -> SelectionStrategy {
        if selectivity >= self.special_group_min_selectivity {
            SelectionStrategy::SpecialGroup
        } else if selectivity <= self.gather_limit(bits) {
            SelectionStrategy::Gather
        } else {
            SelectionStrategy::Compact
        }
    }

    /// Modeled cost in cycles/row/aggregate, or `None` if infeasible.
    ///
    /// Costs are per *input* row: when the selectivity is below the
    /// special-group threshold, gather/compact selection shrinks the rows
    /// the aggregation kernels actually touch, so per-selected-row work is
    /// scaled by the selectivity estimate; at or above the threshold the
    /// special group feeds every row through the kernels.
    pub fn agg_cost(&self, strategy: AggStrategy, p: &AggChoiceParams) -> Option<f64> {
        let sums = p.num_sums.max(1) as f64;
        let fraction = if p.est_selectivity >= self.special_group_min_selectivity {
            1.0
        } else {
            p.est_selectivity.max(0.01)
        };
        match strategy {
            AggStrategy::Scalar => Some(self.scalar_cost * fraction),
            AggStrategy::InRegister => {
                if p.num_groups_effective > bipie_toolbox::agg::MAX_GROUPS_IN_REGISTER
                    || p.input_bytes.iter().any(|&b| b > 4)
                {
                    return None;
                }
                let avg_bytes = if p.input_bytes.is_empty() {
                    1.0
                } else {
                    p.input_bytes.iter().sum::<usize>() as f64 / p.input_bytes.len() as f64
                };
                Some(
                    (self.inreg_base
                        + self.inreg_per_group_per_byte
                            * p.num_groups_effective as f64
                            * avg_bytes)
                        * fraction,
                )
            }
            AggStrategy::MultiAggregate => {
                if !p.multi_layout_fits || p.num_sums == 0 {
                    return None;
                }
                Some((self.multi_per_agg + self.multi_fixed / sums) * fraction)
            }
            AggStrategy::SortBased => {
                if !p.all_packed_narrow || p.num_sums == 0 {
                    return None;
                }
                let sort_cost =
                    self.sort_fixed + self.sort_fixed_per_selectivity * p.est_selectivity;
                Some((self.sort_per_agg + sort_cost / sums) * fraction)
            }
            AggStrategy::RunWise => {
                // O(runs) work where dense strategies do O(rows): the cost
                // per input row is the scalar cost scaled by the run
                // fraction. On fragmented columns (fraction near 1) this
                // offers no advantage and the dense strategies win.
                let f = p.runwise_runs_fraction?;
                Some(self.scalar_cost * f.clamp(0.0, 1.0))
            }
        }
    }

    /// Choose the aggregation strategy for one segment (§3).
    pub fn choose_agg(&self, p: &AggChoiceParams) -> AggStrategy {
        let mut best = (AggStrategy::Scalar, self.scalar_cost);
        for s in AggStrategy::SIMD.into_iter().chain([AggStrategy::RunWise]) {
            if let Some(cost) = self.agg_cost(s, p) {
                if cost < best.1 {
                    best = (s, cost);
                }
            }
        }
        best.0
    }

    /// Budget-aware wrapper around [`StrategyConfig::choose_agg`]
    /// (DESIGN.md §10): when the cost-model winner's projected working set
    /// does not fit the remaining memory budget, walk the degradation
    /// ladder — sort-based if feasible (its scratch is batch-bounded, not
    /// group-bounded), then scalar (no strategy scratch at all) — before
    /// admitting defeat. If nothing fits, the original winner is returned
    /// and its reservation fails with the typed budget error.
    ///
    /// `footprint` projects a strategy's working-set bytes; `remaining` is
    /// `None` when no budget is set (the common case — one branch).
    pub fn choose_agg_budgeted(
        &self,
        p: &AggChoiceParams,
        remaining: Option<usize>,
        footprint: &dyn Fn(AggStrategy) -> usize,
    ) -> AggStrategy {
        let chosen = self.choose_agg(p);
        let Some(remaining) = remaining else { return chosen };
        if footprint(chosen) <= remaining {
            return chosen;
        }
        if self.agg_cost(AggStrategy::SortBased, p).is_some()
            && footprint(AggStrategy::SortBased) <= remaining
        {
            return AggStrategy::SortBased;
        }
        if footprint(AggStrategy::Scalar) <= remaining {
            return AggStrategy::Scalar;
        }
        chosen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(groups: usize, sums: usize, bytes: usize, sel: f64) -> AggChoiceParams {
        AggChoiceParams {
            num_groups_effective: groups,
            num_sums: sums,
            input_bytes: vec![bytes; sums],
            all_packed_narrow: true,
            multi_layout_fits: sums >= 1 && sums * bytes.clamp(4, 8) <= 32,
            est_selectivity: sel,
            runwise_runs_fraction: None,
        }
    }

    #[test]
    fn gather_limit_grows_with_bits() {
        let c = StrategyConfig::default();
        assert!(c.gather_limit(4) < c.gather_limit(14));
        assert!(c.gather_limit(14) < c.gather_limit(21));
        // Figure 7 anchor points: ~2% at 4 bits, ~38% at 21 bits.
        assert!((c.gather_limit(4) - 0.02).abs() < 0.001);
        assert!((c.gather_limit(21) - 0.38).abs() < 0.03);
    }

    #[test]
    fn selection_zones() {
        let c = StrategyConfig::default();
        assert_eq!(c.choose_selection(0.01, 14), SelectionStrategy::Gather);
        assert_eq!(c.choose_selection(0.4, 14), SelectionStrategy::Compact);
        assert_eq!(c.choose_selection(0.95, 14), SelectionStrategy::SpecialGroup);
        assert_eq!(c.choose_selection(1.0, 4), SelectionStrategy::SpecialGroup);
    }

    #[test]
    fn few_groups_narrow_values_pick_in_register() {
        // Figure 8's region: 8 groups, 1-byte inputs, 1-2 sums, high sel.
        let c = StrategyConfig::default();
        assert_eq!(c.choose_agg(&params(9, 1, 1, 0.9)), AggStrategy::InRegister);
        assert_eq!(c.choose_agg(&params(9, 2, 1, 0.9)), AggStrategy::InRegister);
    }

    #[test]
    fn many_aggs_pick_multi() {
        // Figure 10's region: 32+ groups, 4-byte inputs, several sums.
        let c = StrategyConfig::default();
        assert_eq!(c.choose_agg(&params(33, 4, 4, 0.9)), AggStrategy::MultiAggregate);
        assert_eq!(c.choose_agg(&params(33, 5, 4, 0.5)), AggStrategy::MultiAggregate);
    }

    #[test]
    fn low_selectivity_single_sum_picks_sort() {
        // Figure 8/9 row 1x, low selectivity: sort + gather wins.
        let c = StrategyConfig::default();
        let mut p = params(64, 1, 4, 0.1);
        p.multi_layout_fits = true;
        assert_eq!(c.choose_agg(&p), AggStrategy::SortBased);
    }

    #[test]
    fn infeasible_strategies_fall_back() {
        let c = StrategyConfig::default();
        // 8-byte inputs and wide groups: in-register infeasible; no multi
        // layout; not packed-narrow -> scalar.
        let p = AggChoiceParams {
            num_groups_effective: 200,
            num_sums: 2,
            input_bytes: vec![8, 8],
            all_packed_narrow: false,
            multi_layout_fits: false,
            est_selectivity: 1.0,
            runwise_runs_fraction: None,
        };
        assert_eq!(c.choose_agg(&p), AggStrategy::Scalar);
        assert_eq!(c.agg_cost(AggStrategy::InRegister, &p), None);
        assert_eq!(c.agg_cost(AggStrategy::MultiAggregate, &p), None);
        assert_eq!(c.agg_cost(AggStrategy::SortBased, &p), None);
        assert_eq!(c.agg_cost(AggStrategy::RunWise, &p), None);
    }

    #[test]
    fn long_runs_pick_run_wise() {
        let c = StrategyConfig::default();
        // Long runs (0.1% of rows are run headers): run-wise dominates any
        // dense strategy regardless of width or group shape.
        let mut p = params(1, 1, 8, 1.0);
        p.all_packed_narrow = false;
        p.multi_layout_fits = false;
        p.runwise_runs_fraction = Some(0.001);
        assert_eq!(c.choose_agg(&p), AggStrategy::RunWise);
        // Fully fragmented runs (one run per row): no advantage, the dense
        // chooser result stands.
        p.runwise_runs_fraction = Some(1.0);
        assert_ne!(c.choose_agg(&p), AggStrategy::RunWise);
    }

    #[test]
    fn labels() {
        assert_eq!(SelectionStrategy::Gather.label(), "Gather");
        assert_eq!(AggStrategy::MultiAggregate.label(), "Multi");
    }

    #[test]
    fn budgeted_choice_walks_the_degradation_ladder() {
        let c = StrategyConfig::default();
        // In-register wins unbudgeted for this shape.
        let p = params(9, 1, 1, 0.9);
        assert_eq!(c.choose_agg(&p), AggStrategy::InRegister);
        // Footprints: scalar has no strategy scratch, sort-based sits in
        // the middle, everything else is large.
        let footprint = |s: AggStrategy| match s {
            AggStrategy::Scalar => 100,
            AggStrategy::SortBased => 1000,
            _ => 10_000,
        };
        assert_eq!(c.choose_agg_budgeted(&p, None, &footprint), AggStrategy::InRegister);
        assert_eq!(c.choose_agg_budgeted(&p, Some(20_000), &footprint), AggStrategy::InRegister);
        assert_eq!(c.choose_agg_budgeted(&p, Some(5000), &footprint), AggStrategy::SortBased);
        assert_eq!(c.choose_agg_budgeted(&p, Some(500), &footprint), AggStrategy::Scalar);
        // Nothing fits: the original winner comes back and its reservation
        // surfaces the typed error.
        assert_eq!(c.choose_agg_budgeted(&p, Some(10), &footprint), AggStrategy::InRegister);
        // Sort-based must be feasible to be a rung: with no packed-narrow
        // inputs the ladder skips straight to scalar.
        let mut infeasible = p.clone();
        infeasible.all_packed_narrow = false;
        assert_eq!(c.choose_agg_budgeted(&infeasible, Some(5000), &footprint), AggStrategy::Scalar);
    }
}
