//! Multi-query serving: the process-wide [`Engine`] handle (DESIGN.md §15).
//!
//! Everything below `engine` executes *one* query: `scan` drives one morsel
//! stream, `governor` enforces one query's budgets, and the pool — since
//! this PR — interleaves whatever fork-join regions it is given in
//! weighted-fair order. This module is the layer that turns those pieces
//! into a server: one `Engine` owns a registry of shared tables and an
//! admission controller; many client threads (or [`Session`]s with tenant
//! weights and quotas) issue queries against it concurrently.
//!
//! Design points:
//!
//! * **Interior synchronization** — `Engine` is `Sync`; clients share it
//!   behind an `Arc` and call [`Engine::execute`] from any thread. Each
//!   query executes *on the calling thread* (which doubles as pool worker
//!   0), so admission never hands work to a remote executor and a client
//!   always makes progress on its own query even with a saturated pool.
//! * **Admission control** — at most `max_concurrent` queries execute at
//!   once; up to `max_queued` more wait on a condvar turnstile for at most
//!   `queue_timeout`. Anything beyond that is *shed* with a typed error
//!   ([`EngineError::AdmissionRejected`], [`EngineError::AdmissionTimeout`],
//!   [`EngineError::EngineShutdown`]) — the caller finds out immediately
//!   instead of piling onto a machine that cannot serve it.
//! * **Aggregate memory accounting** — an [`AggregateBudget`] caps the sum
//!   of admitted queries' *declared* memory budgets; each admitted query's
//!   own [`Governor`](crate::governor::Governor) then enforces its
//!   declaration against actual allocations. A query whose declaration can
//!   never fit the cap is rejected outright; one that merely does not fit
//!   *now* queues until reservations release.
//! * **Fair pool sharing** — each admitted query is stamped with a unique
//!   [`QueryTag`] carrying its session weight, so the shared worker pool's
//!   weighted-fair scheduler interleaves concurrent scans proportionally.
//!
//! The correctness bar for all of this is byte-identical results: a query
//! executed through a contended `Engine` returns exactly the rows of the
//! same query executed alone (pinned by the `engine_serving` suite).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use bipie_columnstore::Table;

use crate::error::{AdmissionReason, EngineError, Result};
use crate::governor::{AggregateBudget, CancelToken};
use crate::pool::{QueryTag, WorkerPool};
use crate::query::{Query, QueryResult};
use crate::telemetry::{telemetry, ShedReason};

/// Admission and scheduling knobs for an [`Engine`].
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Queries allowed to execute simultaneously (≥ 1).
    pub max_concurrent: usize,
    /// Queries allowed to wait for a slot; a query arriving with the queue
    /// full is shed immediately. `0` disables queueing entirely.
    pub max_queued: usize,
    /// Longest a query may wait in the admission queue before it is shed
    /// with [`EngineError::AdmissionTimeout`].
    pub queue_timeout: Duration,
    /// Cap on the sum of admitted queries' declared memory budgets;
    /// `None` disables aggregate memory admission.
    pub aggregate_mem_budget: Option<usize>,
    /// Declared cost charged against the aggregate budget for queries that
    /// set no `mem_budget` of their own.
    pub default_query_mem: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            max_concurrent: 4,
            max_queued: 32,
            queue_timeout: Duration::from_secs(5),
            aggregate_mem_budget: None,
            default_query_mem: 16 << 20,
        }
    }
}

/// Per-tenant session knobs; see [`Engine::session`].
#[derive(Debug, Clone)]
pub struct SessionOptions {
    /// Fair-share weight for the pool's scheduler (≥ 1): a weight-2
    /// session's queries receive twice the pool dispatches of a weight-1
    /// session's under contention.
    pub weight: u32,
    /// Tenant memory quota: clamps every query's declared `mem_budget`
    /// (and substitutes for a missing one).
    pub mem_quota: Option<usize>,
    /// Tenant time quota: clamps every query's `time_budget` the same way.
    pub time_quota: Option<Duration>,
}

impl Default for SessionOptions {
    fn default() -> Self {
        SessionOptions { weight: 1, mem_quota: None, time_quota: None }
    }
}

/// Counts guarded by the engine's admission lock.
#[derive(Debug, Default)]
struct AdmissionState {
    /// Queries currently admitted and executing.
    active: usize,
    /// Queries currently waiting on the turnstile.
    queued: usize,
    /// Once set, new and queued queries fail with `EngineShutdown`;
    /// in-flight queries drain normally.
    shutting_down: bool,
}

/// A point-in-time view of the admission controller (diagnostics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineSnapshot {
    /// Queries currently admitted and executing.
    pub active: usize,
    /// Queries currently waiting for a slot.
    pub queued: usize,
    /// Declared bytes currently reserved against the aggregate budget.
    pub aggregate_reserved: usize,
    /// The aggregate cap (0 when aggregate admission is disabled).
    pub aggregate_cap: usize,
}

/// The process-wide serving handle: shared tables + admission control over
/// the shared worker pool. See the module docs for the architecture.
pub struct Engine {
    config: EngineConfig,
    // LOCK: `admission` — root of the engine's order; guards the three
    // admission counts. Held across the turnstile wait and briefly at
    // slot release; `tables` is never acquired while it is held.
    admission: Mutex<AdmissionState>,
    /// Signalled on every slot/reservation release and on shutdown.
    // LOCK: waited on exclusively with the `admission` guard.
    turnstile: Condvar,
    /// Aggregate memory accountant (interior atomics, not a lock).
    aggregate: Option<AggregateBudget>,
    /// Registered tables, shared by every in-flight query.
    // LOCK: `tables` — leaf registry lock; held only to insert/remove/clone
    // an `Arc`, never across admission or query execution.
    tables: Mutex<BTreeMap<String, Arc<Table>>>,
    /// Next query id for [`QueryTag`]s (id 0 is the untagged queue).
    next_query_id: AtomicU64,
}

/// Locks a mutex ignoring poisoning: no engine lock is ever held across
/// user code, so a poisoned guard only means another client panicked
/// between two consistent states.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // LOCK: generic acquisition helper — each call site documents its own
    // guard lifetime; poisoning is ignored per the fn contract above.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Engine {
    /// Build an engine with `config`, ready for tables and clients.
    pub fn new(config: EngineConfig) -> Arc<Engine> {
        let aggregate = config.aggregate_mem_budget.map(AggregateBudget::new);
        Arc::new(Engine {
            config,
            admission: Mutex::new(AdmissionState::default()),
            turnstile: Condvar::new(),
            aggregate,
            tables: Mutex::new(BTreeMap::new()),
            next_query_id: AtomicU64::new(1),
        })
    }

    /// An engine with the default [`EngineConfig`].
    pub fn with_defaults() -> Arc<Engine> {
        Engine::new(EngineConfig::default())
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Register (or replace) a table under `name`. In-flight queries on a
    /// replaced table keep their `Arc` and finish on the old data.
    pub fn register_table(&self, name: impl Into<String>, table: Table) {
        // LOCK: `tables` leaf; temp guard dies at `;`.
        lock(&self.tables).insert(name.into(), Arc::new(table));
    }

    /// Drop the table registered under `name`; returns whether it existed.
    /// In-flight queries keep their `Arc` and finish normally.
    pub fn deregister_table(&self, name: &str) -> bool {
        // LOCK: `tables` leaf; temp guard dies at `;`.
        lock(&self.tables).remove(name).is_some()
    }

    /// Names of the currently registered tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        // LOCK: `tables` leaf; temp guard dies at `;`.
        lock(&self.tables).keys().cloned().collect()
    }

    fn lookup(&self, name: &str) -> Result<Arc<Table>> {
        // LOCK: `tables` leaf; temp guard dies at `;` — the clone escapes,
        // the guard does not.
        lock(&self.tables)
            .get(name)
            .cloned()
            .ok_or_else(|| EngineError::UnknownTable(name.to_string()))
    }

    /// Open a tenant [`Session`]: queries issued through it carry the
    /// session's scheduler weight, are clamped to its quotas, and share a
    /// [`CancelToken`] so the tenant can be cancelled as a unit.
    pub fn session(self: &Arc<Self>, options: SessionOptions) -> Session {
        Session { engine: Arc::clone(self), options, cancel: CancelToken::new() }
    }

    /// Execute `query` against the registered table `table` under default
    /// tenant terms (weight 1, no quotas). Blocks the calling thread for
    /// the duration; admission may queue it up to `queue_timeout`.
    pub fn execute(&self, table: &str, query: &Query) -> Result<QueryResult> {
        self.execute_with(table, query, &SessionOptions::default(), None)
    }

    /// Reserve one admission slot plus `mem_bytes` of the aggregate budget
    /// *without* running a query — for engine-external work (ingest,
    /// compaction) that should count against serving capacity, and for
    /// deterministically saturating the engine in tests. Admission rules
    /// are exactly [`Engine::execute`]'s.
    pub fn reserve(&self, mem_bytes: usize) -> Result<EnginePermit<'_>> {
        self.admit(mem_bytes).map(|permit| EnginePermit { permit })
    }

    /// Shut the engine down: queued and future queries fail with
    /// [`EngineError::EngineShutdown`]; this call blocks until every
    /// in-flight query has drained. Idempotent.
    pub fn shutdown(&self) {
        // LOCK: `admission` held across the drain loop below; it is the
        // only guard live in this region.
        let mut state = lock(&self.admission);
        state.shutting_down = true;
        self.turnstile.notify_all();
        while state.active > 0 {
            // LOCK: waits on `turnstile` with the `admission` guard it
            // consumes and returns; permits notify on every release.
            state = self.turnstile.wait(state).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Whether [`Engine::shutdown`] has been initiated.
    pub fn is_shutting_down(&self) -> bool {
        // LOCK: `admission` read-only peek; temp guard dies at `;`.
        lock(&self.admission).shutting_down
    }

    /// A point-in-time view of the admission state (diagnostics, benches).
    pub fn snapshot(&self) -> EngineSnapshot {
        let (active, queued) = {
            // LOCK: `admission` read-only peek; guard dies at block end.
            let state = lock(&self.admission);
            (state.active, state.queued)
        };
        EngineSnapshot {
            active,
            queued,
            aggregate_reserved: self.aggregate.as_ref().map_or(0, AggregateBudget::reserved),
            aggregate_cap: self.aggregate.as_ref().map_or(0, AggregateBudget::cap),
        }
    }

    /// The admission controller: admit now, queue (bounded, timed), or
    /// shed with a typed error. `cost` is the query's declared memory
    /// budget, charged against the aggregate accountant for as long as the
    /// returned permit lives.
    fn admit(&self, cost: usize) -> Result<AdmissionPermit<'_>> {
        let max_concurrent = self.config.max_concurrent.max(1);
        // A declaration the cap can never satisfy is shed immediately —
        // this is the deterministic "provably sheds" path: no concurrency
        // or timing is needed to reach it.
        if let Some(agg) = &self.aggregate {
            if cost > agg.cap() {
                telemetry().publish_engine_shed(ShedReason::AggregateMemory);
                return Err(EngineError::AdmissionRejected {
                    reason: AdmissionReason::AggregateMemory,
                });
            }
        }

        // LOCK: `admission` held for the whole admit loop (waits included);
        // no other lock is acquired while it is live.
        let mut state = lock(&self.admission);
        let mut queued_since: Option<Instant> = None;
        loop {
            if state.shutting_down {
                if queued_since.is_some() {
                    state.queued -= 1;
                }
                drop(state);
                telemetry().publish_engine_shed(ShedReason::Shutdown);
                return Err(EngineError::EngineShutdown);
            }
            if state.active < max_concurrent {
                let reserved = match &self.aggregate {
                    Some(agg) => agg.try_reserve(cost),
                    None => true,
                };
                if reserved {
                    state.active += 1;
                    if queued_since.is_some() {
                        state.queued -= 1;
                    }
                    let (active, queued) = (state.active, state.queued);
                    drop(state);
                    telemetry().publish_engine_admission(active, queued, true);
                    return Ok(AdmissionPermit { engine: self, cost });
                }
            }
            // Saturated (slots or aggregate memory): join the queue once,
            // then wait for releases until the timeout runs out.
            let since = match queued_since {
                Some(since) => since,
                None => {
                    if state.queued >= self.config.max_queued {
                        drop(state);
                        telemetry().publish_engine_shed(ShedReason::QueueFull);
                        return Err(EngineError::AdmissionRejected {
                            reason: AdmissionReason::QueueFull,
                        });
                    }
                    state.queued += 1;
                    telemetry().publish_engine_admission(state.active, state.queued, false);
                    *queued_since.insert(Instant::now())
                }
            };
            let waited = since.elapsed();
            let Some(left) = self.config.queue_timeout.checked_sub(waited) else {
                state.queued -= 1;
                let (active, queued) = (state.active, state.queued);
                drop(state);
                telemetry().publish_engine_admission(active, queued, false);
                telemetry().publish_engine_shed(ShedReason::QueueTimeout);
                return Err(EngineError::AdmissionTimeout { waited });
            };
            // LOCK: timed wait on `turnstile` with the `admission` guard it
            // consumes and returns; permits and `shutdown` notify.
            state =
                self.turnstile.wait_timeout(state, left).unwrap_or_else(PoisonError::into_inner).0;
        }
    }

    /// The post-admission execution path shared by [`Engine::execute`] and
    /// [`Session::execute`].
    fn execute_with(
        &self,
        table: &str,
        query: &Query,
        options: &SessionOptions,
        session_cancel: Option<&CancelToken>,
    ) -> Result<QueryResult> {
        // Fail malformed options and unknown tables fast — before the
        // query consumes an admission slot or queue position. These exits
        // never reach `query::execute`'s telemetry seam, so they publish
        // into the error counters here.
        query.options.validate().inspect_err(|e| telemetry().publish_error(e))?;
        let table = self.lookup(table).inspect_err(|e| telemetry().publish_error(e))?;

        // Tenant quotas clamp the query's own declarations (a query may
        // always ask for *less* than its quota, never more).
        let mem_budget = match (query.options.mem_budget, options.mem_quota) {
            (Some(own), Some(quota)) => Some(own.min(quota)),
            (own, quota) => own.or(quota),
        };
        let time_budget = match (query.options.time_budget, options.time_quota) {
            (Some(own), Some(quota)) => Some(own.min(quota)),
            (own, quota) => own.or(quota),
        };

        let cost = mem_budget.unwrap_or(self.config.default_query_mem);
        let permit = self.admit(cost)?;

        let mut query = query.clone();
        query.options.mem_budget = mem_budget;
        query.options.time_budget = time_budget;
        if query.options.cancel.is_none() {
            query.options.cancel = session_cancel.cloned();
        }
        // ORDERING: Relaxed — unique-id allocation; nothing is published
        // under the id, uniqueness is all the scheduler needs.
        let id = self.next_query_id.fetch_add(1, Ordering::Relaxed);
        query.options.tag = QueryTag { query: id, weight: options.weight.max(1) };

        let result = crate::query::execute(&table, &query);
        drop(permit);
        telemetry().publish_sched_stats(WorkerPool::global().sched_stats());
        result
    }
}

/// RAII admission: one slot + one aggregate reservation, released (and the
/// turnstile notified) on drop — panic-safe by construction.
struct AdmissionPermit<'e> {
    engine: &'e Engine,
    cost: usize,
}

impl Drop for AdmissionPermit<'_> {
    fn drop(&mut self) {
        if let Some(agg) = &self.engine.aggregate {
            agg.release(self.cost);
        }
        let (active, queued) = {
            // LOCK: `admission` slot release; guard dies at block end,
            // before the turnstile is notified.
            let mut state = lock(&self.engine.admission);
            state.active -= 1;
            (state.active, state.queued)
        };
        self.engine.turnstile.notify_all();
        telemetry().publish_engine_admission(active, queued, false);
    }
}

/// A held admission slot from [`Engine::reserve`]; dropping it releases
/// the slot and its aggregate-memory reservation.
pub struct EnginePermit<'e> {
    #[allow(dead_code)] // held for its Drop side effect
    permit: AdmissionPermit<'e>,
}

/// A tenant handle onto a shared [`Engine`]: carries a scheduler weight,
/// quota clamps, and a session-wide [`CancelToken`]. Cheap to open; open
/// one per client or per tenant as granularity demands.
pub struct Session {
    engine: Arc<Engine>,
    options: SessionOptions,
    cancel: CancelToken,
}

impl Session {
    /// Execute `query` under this session's weight, quotas, and cancel
    /// token (a query's own `cancel` token, when set, takes precedence).
    pub fn execute(&self, table: &str, query: &Query) -> Result<QueryResult> {
        self.engine.execute_with(table, query, &self.options, Some(&self.cancel))
    }

    /// The session's options.
    pub fn options(&self) -> &SessionOptions {
        &self.options
    }

    /// The shared engine handle.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// A clone of the session's cancel token.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Cancel every in-flight and future query of this session that did
    /// not bring its own token. The engine and its pool stay fully
    /// serviceable for other sessions — pinned by the lifecycle tests.
    pub fn cancel_all(&self) {
        self.cancel.cancel();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{AggExpr, QueryBuilder};
    use bipie_columnstore::{ColumnSpec, LogicalType, TableBuilder, Value};

    fn small_table(rows: i64) -> Table {
        let mut b = TableBuilder::with_segment_rows(
            vec![ColumnSpec::new("g", LogicalType::Str), ColumnSpec::new("v", LogicalType::I64)],
            256,
        );
        for i in 0..rows {
            b.push_row(vec![Value::Str(["a", "b"][(i % 2) as usize].into()), Value::I64(i)]);
        }
        b.finish()
    }

    fn count_query() -> Query {
        QueryBuilder::new().group_by("g").aggregate(AggExpr::count_star()).build()
    }

    #[test]
    fn executes_registered_table_and_rejects_unknown() {
        let engine = Engine::with_defaults();
        engine.register_table("t", small_table(500));
        let r = engine.execute("t", &count_query()).expect("query runs");
        assert_eq!(r.num_rows(), 2);
        assert_eq!(
            engine.execute("nope", &count_query()).err(),
            Some(EngineError::UnknownTable("nope".into()))
        );
        assert_eq!(engine.table_names(), vec!["t".to_string()]);
        assert!(engine.deregister_table("t"));
        assert!(!engine.deregister_table("t"));
    }

    #[test]
    fn oversized_declaration_is_shed_deterministically() {
        let engine = Engine::new(EngineConfig {
            aggregate_mem_budget: Some(1 << 20),
            ..EngineConfig::default()
        });
        engine.register_table("t", small_table(100));
        let mut q = count_query();
        q.options.mem_budget = Some(2 << 20);
        assert_eq!(
            engine.execute("t", &q).err(),
            Some(EngineError::AdmissionRejected { reason: AdmissionReason::AggregateMemory })
        );
        // The engine remains serviceable afterwards.
        let mut ok = count_query();
        ok.options.mem_budget = Some(1 << 20);
        assert!(engine.execute("t", &ok).is_ok());
    }

    #[test]
    fn queue_full_and_timeout_shed_with_typed_errors() {
        let engine = Engine::new(EngineConfig {
            max_concurrent: 1,
            max_queued: 0,
            queue_timeout: Duration::from_millis(10),
            ..EngineConfig::default()
        });
        engine.register_table("t", small_table(100));
        let held = engine.reserve(0).expect("slot free");
        // max_queued = 0: the second arrival sheds instead of queueing.
        assert_eq!(
            engine.execute("t", &count_query()).err(),
            Some(EngineError::AdmissionRejected { reason: AdmissionReason::QueueFull })
        );
        drop(held);
        assert!(engine.execute("t", &count_query()).is_ok());

        // With one queue slot the arrival waits, then times out.
        let engine = Engine::new(EngineConfig {
            max_concurrent: 1,
            max_queued: 1,
            queue_timeout: Duration::from_millis(10),
            ..EngineConfig::default()
        });
        engine.register_table("t", small_table(100));
        let _held = engine.reserve(0).expect("slot free");
        match engine.execute("t", &count_query()) {
            Err(EngineError::AdmissionTimeout { waited }) => {
                assert!(waited >= Duration::from_millis(10));
            }
            other => panic!("expected AdmissionTimeout, got {other:?}"), // PANIC: test pin.
        }
    }

    #[test]
    fn aggregate_pressure_queues_then_admits() {
        let engine = Engine::new(EngineConfig {
            max_concurrent: 4,
            max_queued: 4,
            queue_timeout: Duration::from_secs(5),
            aggregate_mem_budget: Some(64 << 20),
            ..EngineConfig::default()
        });
        engine.register_table("t", small_table(100));
        let held = engine.reserve(60 << 20).expect("fits");
        assert_eq!(engine.snapshot().aggregate_reserved, 60 << 20);
        // 8 MiB fits the cap but not the current 4 MiB headroom: the query
        // must wait for the release below, then succeed.
        let mut q = count_query();
        q.options.mem_budget = Some(8 << 20);
        let worker = {
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || engine.execute("t", &q))
        };
        // Give the spawned query time to reach the queue, then release.
        while engine.snapshot().queued == 0 {
            std::thread::yield_now();
        }
        drop(held);
        assert!(worker.join().expect("no panic").is_ok());
        assert_eq!(engine.snapshot().aggregate_reserved, 0);
    }

    #[test]
    fn shutdown_drains_and_refuses() {
        let engine = Engine::with_defaults();
        engine.register_table("t", small_table(100));
        engine.shutdown();
        assert!(engine.is_shutting_down());
        assert_eq!(engine.execute("t", &count_query()).err(), Some(EngineError::EngineShutdown));
        assert!(matches!(engine.reserve(0), Err(EngineError::EngineShutdown)));
        // Idempotent.
        engine.shutdown();
    }

    #[test]
    fn session_quotas_clamp_query_budgets() {
        let engine = Engine::new(EngineConfig {
            aggregate_mem_budget: Some(16 << 20),
            ..EngineConfig::default()
        });
        engine.register_table("t", small_table(100));
        let session = engine.session(SessionOptions {
            weight: 2,
            mem_quota: Some(1 << 30),
            time_quota: Some(Duration::from_secs(60)),
        });
        // The tenant quota exceeds the aggregate cap, but the query's own
        // smaller declaration wins the clamp and fits.
        let mut q = count_query();
        q.options.mem_budget = Some(8 << 20);
        assert!(session.execute("t", &q).is_ok());
        // With no declaration the quota is the declaration — too big.
        assert_eq!(
            session.execute("t", &count_query()).err(),
            Some(EngineError::AdmissionRejected { reason: AdmissionReason::AggregateMemory })
        );
    }

    #[test]
    fn cancelled_session_fails_queries_but_not_the_engine() {
        let engine = Engine::with_defaults();
        engine.register_table("t", small_table(2000));
        let doomed = engine.session(SessionOptions::default());
        doomed.cancel_all();
        assert_eq!(doomed.execute("t", &count_query()).err(), Some(EngineError::Cancelled));
        // A fresh session on the same engine is unaffected.
        let fresh = engine.session(SessionOptions::default());
        assert!(fresh.execute("t", &count_query()).is_ok());
    }
}
