//! Query profiler: per-phase cycle tracing and specialization decision
//! logging (DESIGN.md §9).
//!
//! BIPie's defining behavior is runtime operator specialization — which
//! makes "why did the engine pick that strategy, and where did the cycles
//! go?" the first question every perf investigation asks. This module
//! answers it with three pieces:
//!
//! * [`Tracer`] — a **per-worker, fixed-capacity event buffer**. Each scan
//!   worker owns one exclusively (no locks, no atomics on the hot path) and
//!   records *phase spans* (plan, segment scan, selection, unpack,
//!   aggregation, wide-group fallback, mutable tail, parallel merge),
//!   stamped with serialized TSC reads ([`bipie_toolbox::cycles`]) plus
//!   wall-clock time, and *decision events* capturing exactly the inputs
//!   the strategy chooser saw.
//! * [`ProfileLevel`] — the opt-in knob. `Off` (the default) compiles every
//!   tracer call down to a branch on a plain bool: no timestamps, no
//!   atomics, no allocation anywhere in the batch loop. `Counters`
//!   accumulates per-phase totals without storing events; `Spans`
//!   additionally keeps the full event log.
//! * [`QueryProfile`] — the merged result, aggregated from the per-worker
//!   buffers at join time, with a human-readable `EXPLAIN ANALYZE`-style
//!   renderer and a dependency-free JSON serializer for bench tooling.
//!
//! Buffer policy: each worker's buffer holds up to [`EVENT_CAPACITY`]
//! events; once full, *new* events are dropped (and counted in
//! `dropped_events`) rather than overwriting old ones, so the plan /
//! early-segment context an investigation starts from is always retained.
//! Per-phase and per-strategy counters keep counting after overflow, so
//! totals stay exact even when the event log is truncated.

use std::time::Instant;

use crate::stats::ExecStats;
use crate::strategy::{AggStrategy, SelectionStrategy};

/// How much profiling a query execution performs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum ProfileLevel {
    /// No profiling: tracer calls reduce to a branch on a bool (overhead
    /// budget ≤ 2% on the Q1 scan bench, gated in CI).
    #[default]
    Off,
    /// Per-phase cycle/row totals and per-strategy decision counters, no
    /// stored events.
    Counters,
    /// `Counters` plus the full span/decision event log (bounded by
    /// [`EVENT_CAPACITY`] per worker).
    Spans,
}

/// Events each worker can buffer before dropping (≈1 MiB per worker at
/// `Spans`; a 4096-row batch emits ~4 events, so this covers ~16M rows per
/// worker before truncation).
pub const EVENT_CAPACITY: usize = 16 * 1024;

/// Whether the profiler was compiled out entirely (`no_profiler` feature —
/// used only by the overhead benchmark to build a true no-profiler
/// baseline binary).
pub fn profiler_compiled_out() -> bool {
    cfg!(feature = "no_profiler")
}

/// An execution phase a span can be attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Phase {
    /// Per-query admission planning: elimination, overflow proofs, mapper
    /// viability.
    Plan = 0,
    /// One claimed scan range (a whole segment when serial, a morsel when
    /// parallel).
    SegmentScan = 1,
    /// Filter evaluation + deleted-row merge + selectivity measurement for
    /// one batch.
    Selection = 2,
    /// Group-id extraction (dictionary-code unpack) for one batch.
    Unpack = 3,
    /// The specialized aggregation kernel consuming one batch.
    Aggregation = 4,
    /// One batch through the wide-group (u32 group id) scalar fallback.
    WideGroup = 5,
    /// The row-at-a-time mutable-region pass.
    MutableTail = 6,
    /// Phase-2 reduction of per-worker hash partitions.
    ParallelMerge = 7,
}

impl Phase {
    /// Number of phases (array sizing).
    pub const COUNT: usize = 8;

    /// All phases, in display order.
    pub const ALL: [Phase; Phase::COUNT] = [
        Phase::Plan,
        Phase::SegmentScan,
        Phase::Selection,
        Phase::Unpack,
        Phase::Aggregation,
        Phase::WideGroup,
        Phase::MutableTail,
        Phase::ParallelMerge,
    ];

    /// Stable lowercase label (also the JSON key).
    pub fn label(self) -> &'static str {
        match self {
            Phase::Plan => "plan",
            Phase::SegmentScan => "segment_scan",
            Phase::Selection => "selection",
            Phase::Unpack => "unpack",
            Phase::Aggregation => "aggregation",
            Phase::WideGroup => "wide_group",
            Phase::MutableTail => "mutable_tail",
            Phase::ParallelMerge => "parallel_merge",
        }
    }
}

/// Sentinel for "no segment / no morsel" in event coordinates.
pub const NO_ID: u32 = u32::MAX;

/// Where a span happened and which specialized operators it ran.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SpanLoc {
    /// Table segment ordinal (`NO_ID` when not segment-scoped).
    pub segment: u32,
    /// Morsel ordinal within the segment (`NO_ID` when not morsel-scoped).
    pub morsel: u32,
    /// Selection strategy this span ran under, if any.
    pub selection: Option<SelectionStrategy>,
    /// Aggregation strategy this span ran under, if any.
    pub agg: Option<AggStrategy>,
    /// Whether the range was stolen from another worker's home partition.
    pub stolen: bool,
}

impl SpanLoc {
    /// A span with no segment/morsel coordinates.
    pub fn none() -> SpanLoc {
        SpanLoc { segment: NO_ID, morsel: NO_ID, ..SpanLoc::default() }
    }

    /// A segment/morsel-scoped span.
    pub fn at(segment: u32, morsel: u32) -> SpanLoc {
        SpanLoc { segment, morsel, ..SpanLoc::default() }
    }

    /// Attach the selection strategy.
    pub fn with_selection(mut self, s: SelectionStrategy) -> SpanLoc {
        self.selection = Some(s);
        self
    }

    /// Attach the aggregation strategy.
    pub fn with_agg(mut self, a: AggStrategy) -> SpanLoc {
        self.agg = Some(a);
        self
    }

    /// Mark the range as stolen work.
    pub fn with_stolen(mut self, stolen: bool) -> SpanLoc {
        self.stolen = stolen;
        self
    }
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A timed phase span.
    Span {
        /// The phase the cycles belong to.
        phase: Phase,
        /// Worker index that recorded the span.
        worker: u32,
        /// Coordinates and strategy labels.
        loc: SpanLoc,
        /// Rows the span covered.
        rows: u64,
        /// Raw serialized-TSC reading at span start — a process-wide
        /// timeline coordinate (TSC is invariant and core-synchronized on
        /// the supported hardware), which is what lets
        /// [`QueryProfile::to_chrome_trace`] place every worker's spans on
        /// one coherent time axis.
        start_cycles: u64,
        /// Serialized-TSC cycles elapsed.
        cycles: u64,
        /// Wall-clock nanoseconds elapsed.
        wall_nanos: u64,
    },
    /// The per-batch selection-strategy decision, with the chooser's inputs.
    SelectionDecision {
        /// Raw TSC reading when the decision was recorded (same timeline as
        /// `Span::start_cycles`; 0 when the event predates span export).
        at_cycles: u64,
        /// Table segment ordinal.
        segment: u32,
        /// Morsel ordinal within the segment (`NO_ID` for serial scans).
        morsel: u32,
        /// First row of the batch within the segment.
        row_start: u64,
        /// Rows in the batch.
        rows: u32,
        /// Dominant packed input bit width the crossover used.
        bits: u8,
        /// Selectivity *observed* for this batch (the chooser input — the
        /// engine decides per batch from measured, not estimated,
        /// selectivity, §3).
        observed_selectivity: f64,
        /// The strategy picked.
        chosen: SelectionStrategy,
        /// True when `forced_selection` overrode the chooser.
        forced: bool,
    },
    /// The per-segment (per worker-executor) aggregation-strategy decision.
    AggDecision {
        /// Raw TSC reading when the decision was recorded (same timeline as
        /// `Span::start_cycles`; 0 when the event predates span export).
        at_cycles: u64,
        /// Table segment ordinal.
        segment: u32,
        /// Worker that planned this executor.
        worker: u32,
        /// Group count including the special-group slot.
        num_groups_effective: u32,
        /// SUM aggregate count.
        num_sums: u32,
        /// MIN/MAX aggregate count.
        num_minmax: u32,
        /// Selectivity *estimate* the chooser saw (first batch's measured
        /// selectivity; 1.0 when unfiltered).
        est_selectivity: f64,
        /// Whether every sum input was packed-narrow (sort-based viable).
        all_packed_narrow: bool,
        /// Whether a multi-aggregate row layout existed.
        multi_layout_fits: bool,
        /// The strategy picked.
        chosen: AggStrategy,
        /// True when `forced_agg` overrode the chooser.
        forced: bool,
    },
}

/// A captured span start; holds timestamps only when profiling is enabled,
/// so `Off` never reads a clock.
#[derive(Debug, Clone, Copy)]
pub struct SpanStart(Option<(u64, Instant)>);

/// Aggregated totals for one phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTotals {
    /// Spans recorded.
    pub count: u64,
    /// Rows covered.
    pub rows: u64,
    /// Cycles spent.
    pub cycles: u64,
    /// Wall nanoseconds spent (sums across workers, so it can exceed the
    /// query's elapsed wall time on parallel scans).
    pub wall_nanos: u64,
}

impl PhaseTotals {
    fn add(&mut self, rows: u64, cycles: u64, wall_nanos: u64) {
        self.count += 1;
        self.rows += rows;
        self.cycles += cycles;
        self.wall_nanos += wall_nanos;
    }

    fn absorb(&mut self, other: &PhaseTotals) {
        self.count += other.count;
        self.rows += other.rows;
        self.cycles += other.cycles;
        self.wall_nanos += other.wall_nanos;
    }

    /// Cycles per covered row (0 when no rows).
    pub fn cycles_per_row(&self) -> f64 {
        if self.rows == 0 {
            0.0
        } else {
            self.cycles as f64 / self.rows as f64
        }
    }
}

/// Per-worker trace collector. Owned exclusively by one worker for the
/// duration of a scan — all methods are `&mut self`, nothing is shared, so
/// the hot path takes no locks and touches no atomics.
#[derive(Debug)]
pub struct Tracer {
    level: ProfileLevel,
    worker: u32,
    events: Vec<TraceEvent>,
    dropped: u64,
    phases: [PhaseTotals; Phase::COUNT],
    selection_decisions: [u64; 4],
    agg_decisions: [u64; 5],
}

impl Tracer {
    /// A tracer for `worker` at the given level. `Spans` preallocates the
    /// whole event buffer up front so the batch loop never allocates.
    pub fn new(level: ProfileLevel, worker: u32) -> Tracer {
        Tracer::with_capacity(level, worker, EVENT_CAPACITY)
    }

    /// [`Tracer::new`] with an explicit event capacity (tests exercise the
    /// overflow policy with tiny buffers).
    pub fn with_capacity(level: ProfileLevel, worker: u32, capacity: usize) -> Tracer {
        let events = match level {
            ProfileLevel::Spans if !profiler_compiled_out() => Vec::with_capacity(capacity),
            _ => Vec::new(),
        };
        Tracer {
            level,
            worker,
            events,
            dropped: 0,
            phases: [PhaseTotals::default(); Phase::COUNT],
            selection_decisions: [0; 4],
            agg_decisions: [0; 5],
        }
    }

    /// A permanently-off tracer (serial paths that want one without
    /// consulting options).
    pub fn disabled() -> Tracer {
        Tracer::new(ProfileLevel::Off, 0)
    }

    /// Whether any profiling is active. This is the one branch every
    /// instrumentation site pays at `Off`.
    #[inline]
    pub fn enabled(&self) -> bool {
        !profiler_compiled_out() && self.level != ProfileLevel::Off
    }

    /// Whether the full event log is kept.
    #[inline]
    fn spans(&self) -> bool {
        self.enabled() && self.level == ProfileLevel::Spans
    }

    /// Begin a span. At `Off` this reads no clock and returns an inert
    /// token.
    #[inline]
    pub fn start(&self) -> SpanStart {
        if self.enabled() {
            SpanStart(Some((bipie_toolbox::cycles::read_tsc(), Instant::now())))
        } else {
            SpanStart(None)
        }
    }

    /// Finish a span started with [`Tracer::start`]. A no-op at `Off`.
    #[inline]
    pub fn span(&mut self, phase: Phase, loc: SpanLoc, rows: u64, start: SpanStart) {
        let Some((c0, w0)) = start.0 else { return };
        let cycles = bipie_toolbox::cycles::read_tsc().saturating_sub(c0);
        let wall_nanos = w0.elapsed().as_nanos() as u64;
        self.phases[phase as usize].add(rows, cycles, wall_nanos);
        if self.spans() {
            self.push(TraceEvent::Span {
                phase,
                worker: self.worker,
                loc,
                rows,
                start_cycles: c0,
                cycles,
                wall_nanos,
            });
        }
    }

    /// Record one batch's selection-strategy decision with the chooser's
    /// inputs. A no-op at `Off`.
    #[allow(clippy::too_many_arguments)] // mirrors the chooser's input list
    #[inline]
    pub fn decision_selection(
        &mut self,
        segment: u32,
        morsel: u32,
        row_start: u64,
        rows: u32,
        bits: u8,
        observed_selectivity: f64,
        chosen: SelectionStrategy,
        forced: bool,
    ) {
        if !self.enabled() {
            return;
        }
        self.selection_decisions[chosen as usize] += 1;
        if self.spans() {
            // The timestamp is spans-only work: `Counters` counts the
            // decision without reading a clock.
            self.push(TraceEvent::SelectionDecision {
                at_cycles: bipie_toolbox::cycles::read_tsc(),
                segment,
                morsel,
                row_start,
                rows,
                bits,
                observed_selectivity,
                chosen,
                forced,
            });
        }
    }

    /// Record one segment-executor's aggregation-strategy decision with the
    /// chooser's inputs. A no-op at `Off`.
    #[allow(clippy::too_many_arguments)] // mirrors the chooser's input list
    #[inline]
    pub fn decision_agg(
        &mut self,
        segment: u32,
        num_groups_effective: u32,
        num_sums: u32,
        num_minmax: u32,
        est_selectivity: f64,
        all_packed_narrow: bool,
        multi_layout_fits: bool,
        chosen: AggStrategy,
        forced: bool,
    ) {
        if !self.enabled() {
            return;
        }
        self.agg_decisions[chosen as usize] += 1;
        if self.spans() {
            let worker = self.worker;
            // Spans-only timestamp, as in `decision_selection`.
            self.push(TraceEvent::AggDecision {
                at_cycles: bipie_toolbox::cycles::read_tsc(),
                segment,
                worker,
                num_groups_effective,
                num_sums,
                num_minmax,
                est_selectivity,
                all_packed_narrow,
                multi_layout_fits,
                chosen,
                forced,
            });
        }
    }

    /// Buffer an event, dropping (and counting) once the fixed capacity is
    /// reached — never reallocating.
    #[inline]
    fn push(&mut self, event: TraceEvent) {
        if self.events.len() < self.events.capacity() {
            self.events.push(event);
        } else {
            self.dropped += 1;
        }
    }

    /// Events dropped by the overflow policy so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// One contributing tracer's event-ring occupancy, captured at absorb time
/// so `render_explain` can show how close each worker came to the
/// keep-first truncation point (observability of the observability:
/// a silently full ring is invisible in the events themselves).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerRing {
    /// Worker index that owned the ring.
    pub worker: u32,
    /// Events retained in the ring.
    pub events: usize,
    /// Ring capacity the tracer was built with.
    pub capacity: usize,
    /// Events the keep-first policy dropped.
    pub dropped: u64,
}

impl WorkerRing {
    /// Ring occupancy as a percentage of capacity.
    pub fn utilization_pct(&self) -> f64 {
        if self.capacity == 0 {
            0.0
        } else {
            self.events as f64 * 100.0 / self.capacity as f64
        }
    }
}

/// The merged profile of one query execution, aggregated from every
/// worker's [`Tracer`] at join time. Empty (all zero) when the query ran
/// at [`ProfileLevel::Off`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryProfile {
    /// The level the query ran at.
    pub level: ProfileLevel,
    /// Workers that contributed buffers (0 ⇒ nothing recorded).
    pub workers: usize,
    /// Per-phase totals, indexed by [`Phase`].
    pub phases: [PhaseTotals; Phase::COUNT],
    /// Selection decisions per strategy, indexed by [`SelectionStrategy`].
    /// Mirrors `ExecStats::selection_batches` whenever profiling is on.
    pub selection_decisions: [u64; 4],
    /// Aggregation decisions per strategy, indexed by [`AggStrategy`].
    /// Mirrors `ExecStats::agg_segments` whenever profiling is on.
    pub agg_decisions: [u64; 5],
    /// The event log (only at [`ProfileLevel::Spans`]), worker-major order.
    pub events: Vec<TraceEvent>,
    /// Events the fixed-capacity buffers had to drop.
    pub dropped_events: u64,
    /// Per-contributing-tracer ring occupancy (only rings that existed,
    /// i.e. `Spans`-level tracers), in absorb order.
    pub worker_rings: Vec<WorkerRing>,
}

impl QueryProfile {
    /// An empty profile at the given level.
    pub fn new(level: ProfileLevel) -> QueryProfile {
        QueryProfile { level, ..QueryProfile::default() }
    }

    /// Fold one worker's finished tracer into the profile. Tracers that
    /// recorded nothing (e.g. a mutable-tail tracer on a table with no
    /// mutable rows) are skipped so `workers` counts real contributors.
    pub fn absorb(&mut self, tracer: Tracer) {
        if !tracer.enabled() {
            return;
        }
        let recorded_nothing = tracer.events.is_empty()
            && tracer.dropped == 0
            && tracer.phases.iter().all(|p| p.count == 0)
            && tracer.selection_decisions.iter().all(|&c| c == 0)
            && tracer.agg_decisions.iter().all(|&c| c == 0);
        if recorded_nothing {
            return;
        }
        self.workers += 1;
        if tracer.events.capacity() > 0 {
            self.worker_rings.push(WorkerRing {
                worker: tracer.worker,
                events: tracer.events.len(),
                capacity: tracer.events.capacity(),
                dropped: tracer.dropped,
            });
        }
        for (mine, theirs) in self.phases.iter_mut().zip(&tracer.phases) {
            mine.absorb(theirs);
        }
        for (mine, theirs) in self.selection_decisions.iter_mut().zip(&tracer.selection_decisions) {
            *mine += theirs;
        }
        for (mine, theirs) in self.agg_decisions.iter_mut().zip(&tracer.agg_decisions) {
            *mine += theirs;
        }
        self.dropped_events += tracer.dropped;
        self.events.extend(tracer.events);
    }

    /// Whether nothing was recorded (`Off`, or no scan work happened).
    pub fn is_empty(&self) -> bool {
        self.workers == 0
            && self.events.is_empty()
            && self.phases.iter().all(|p| p.count == 0)
            && self.selection_decisions.iter().all(|&c| c == 0)
            && self.agg_decisions.iter().all(|&c| c == 0)
    }

    /// Totals for one phase.
    pub fn phase(&self, phase: Phase) -> &PhaseTotals {
        &self.phases[phase as usize]
    }

    /// Selection decisions recorded for one strategy.
    pub fn selection_count(&self, s: SelectionStrategy) -> u64 {
        self.selection_decisions[s as usize]
    }

    /// Aggregation decisions recorded for one strategy.
    pub fn agg_count(&self, a: AggStrategy) -> u64 {
        self.agg_decisions[a as usize]
    }

    /// Render the profile as a human-readable `EXPLAIN ANALYZE`-style tree.
    ///
    /// At `Spans` the tree groups events per segment and, within each
    /// segment, per selection strategy (batches, rows, mean observed
    /// selectivity, selection and aggregation cycles/row) alongside the
    /// aggregation decisions that segment's executors made. At `Counters`
    /// only the per-phase totals render. `stats` supplies the scan-level
    /// counters (rows, morsels, steals) the coordinator tracked.
    pub fn render_explain(&self, stats: &ExecStats) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "EXPLAIN ANALYZE  (profile={:?}, workers={}, dropped_events={})\n",
            self.level, self.workers, self.dropped_events
        ));
        out.push_str(&format!(
            "Query: {} batches, {} rows scanned, {} segments ({} eliminated), \
             {} morsels ({} stolen), {} mutable rows\n",
            stats.batches,
            stats.rows_scanned,
            stats.segments_scanned,
            stats.segments_eliminated,
            stats.morsels_scanned,
            stats.morsel_steals,
            stats.mutable_rows,
        ));
        if stats.governor_checks > 0 {
            out.push_str(&format!(
                "Governor: {} checks, {} bytes peak reserved\n",
                stats.governor_checks, stats.mem_reserved_peak,
            ));
        }
        if !self.worker_rings.is_empty() {
            let rings: Vec<String> = self
                .worker_rings
                .iter()
                .map(|r| {
                    format!(
                        "w{} {}/{} ({:.1}%{})",
                        r.worker,
                        r.events,
                        r.capacity,
                        r.utilization_pct(),
                        if r.dropped > 0 {
                            format!(", {} dropped", r.dropped)
                        } else {
                            String::new()
                        },
                    )
                })
                .collect();
            out.push_str(&format!("Tracer rings: {}\n", rings.join("; ")));
        }
        if self.is_empty() {
            out.push_str("└─ (profiling off — run with ProfileLevel::Counters or Spans)\n");
            return out;
        }

        // Phase totals, always available when profiling was on.
        out.push_str("├─ phases\n");
        for phase in Phase::ALL {
            let t = self.phase(phase);
            if t.count == 0 {
                continue;
            }
            out.push_str(&format!(
                "│    {:<14} spans={:<6} rows={:<9} cycles={:<12} ({:.2} cy/row, {:.3} ms wall)\n",
                phase.label(),
                t.count,
                t.rows,
                t.cycles,
                t.cycles_per_row(),
                t.wall_nanos as f64 / 1e6,
            ));
        }

        if self.level != ProfileLevel::Spans {
            out.push_str(&self.render_strategy_totals("└─ "));
            return out;
        }

        // Spans: per-segment tree from the event log.
        let mut segments: Vec<u32> = self
            .events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Span { loc, .. } if loc.segment != NO_ID => Some(loc.segment),
                TraceEvent::SelectionDecision { segment, .. }
                | TraceEvent::AggDecision { segment, .. } => Some(*segment),
                _ => None,
            })
            .collect();
        segments.sort_unstable();
        segments.dedup();

        for &seg in &segments {
            out.push_str(&self.render_segment(seg));
        }
        let tail = self.phase(Phase::MutableTail);
        if tail.count > 0 {
            out.push_str(&format!("├─ mutable tail  rows={}  cycles={}\n", tail.rows, tail.cycles));
        }
        let merge = self.phase(Phase::ParallelMerge);
        if merge.count > 0 {
            out.push_str(&format!(
                "├─ parallel merge  spans={}  cycles={}  ({:.3} ms wall)\n",
                merge.count,
                merge.cycles,
                merge.wall_nanos as f64 / 1e6
            ));
        }
        out.push_str(&self.render_strategy_totals("└─ "));
        out
    }

    fn render_strategy_totals(&self, prefix: &str) -> String {
        let sel: Vec<String> = SelectionStrategy::ALL
            .iter()
            .filter(|&&s| self.selection_count(s) > 0)
            .map(|&s| format!("{}={}", s.label(), self.selection_count(s)))
            .collect();
        let agg: Vec<String> = AggStrategy::ALL
            .iter()
            .filter(|&&a| self.agg_count(a) > 0)
            .map(|&a| format!("{}={}", a.label(), self.agg_count(a)))
            .collect();
        format!(
            "{}strategies  selection[{}]  aggregation[{}]\n",
            prefix,
            sel.join(", "),
            agg.join(", ")
        )
    }

    fn render_segment(&self, seg: u32) -> String {
        let mut out = String::new();
        // Segment header: rows/morsels/steals from SegmentScan spans.
        let (mut rows, mut morsels, mut steals, mut seg_cycles) = (0u64, 0u64, 0u64, 0u64);
        for e in &self.events {
            if let TraceEvent::Span { phase: Phase::SegmentScan, loc, rows: r, cycles, .. } = e {
                if loc.segment == seg {
                    rows += r;
                    morsels += 1;
                    steals += loc.stolen as u64;
                    seg_cycles += cycles;
                }
            }
        }
        out.push_str(&format!(
            "├─ segment {seg}  rows={rows}  ranges={morsels}  steals={steals}  cycles={seg_cycles}\n"
        ));

        // Aggregation decisions for this segment (one per worker-executor).
        for e in &self.events {
            if let TraceEvent::AggDecision {
                segment,
                worker,
                num_groups_effective,
                num_sums,
                num_minmax,
                est_selectivity,
                chosen,
                forced,
                ..
            } = e
            {
                if *segment == seg {
                    out.push_str(&format!(
                        "│    decision agg: {:<8} groups={} sums={} minmax={} est_sel={:.3} \
                         worker={}{}\n",
                        chosen.label(),
                        num_groups_effective,
                        num_sums,
                        num_minmax,
                        est_selectivity,
                        worker,
                        if *forced { " (forced)" } else { "" },
                    ));
                }
            }
        }

        // Per selection strategy: batch count / rows / mean selectivity from
        // decisions, cycles from the labeled selection+aggregation spans.
        for strat in SelectionStrategy::ALL {
            let (mut batches, mut brows, mut sel_sum, mut bits_max) = (0u64, 0u64, 0.0f64, 0u8);
            for e in &self.events {
                if let TraceEvent::SelectionDecision {
                    segment,
                    rows,
                    bits,
                    observed_selectivity,
                    chosen,
                    ..
                } = e
                {
                    if *segment == seg && *chosen == strat {
                        batches += 1;
                        brows += *rows as u64;
                        sel_sum += observed_selectivity;
                        bits_max = bits_max.max(*bits);
                    }
                }
            }
            if batches == 0 {
                continue;
            }
            let (mut sel_cycles, mut agg_cycles, mut agg_label) = (0u64, 0u64, None);
            for e in &self.events {
                if let TraceEvent::Span { phase, loc, cycles, .. } = e {
                    if loc.segment != seg || loc.selection != Some(strat) {
                        continue;
                    }
                    match phase {
                        Phase::Selection => sel_cycles += cycles,
                        Phase::Aggregation | Phase::WideGroup => {
                            agg_cycles += cycles;
                            agg_label = loc.agg.or(agg_label);
                        }
                        _ => {}
                    }
                }
            }
            let denom = brows.max(1) as f64;
            out.push_str(&format!(
                "│    {:<13} batches={:<5} rows={:<9} sel={:.3}  bits={}  \
                 select {:.2} cy/r  agg[{}] {:.2} cy/r\n",
                strat.label(),
                batches,
                brows,
                sel_sum / batches as f64,
                bits_max,
                sel_cycles as f64 / denom,
                agg_label.map_or("-", AggStrategy::label),
                agg_cycles as f64 / denom,
            ));
        }
        out
    }

    /// Serialize the profile as JSON (dependency-free; schema documented in
    /// DESIGN.md §9). Event logs are summarized — phases, per-strategy
    /// decision counters, and per-segment rollups — so the output stays
    /// bounded regardless of scan size.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        s.push_str(&format!("\"level\": \"{:?}\", ", self.level));
        s.push_str(&format!("\"workers\": {}, ", self.workers));
        s.push_str(&format!("\"dropped_events\": {}, ", self.dropped_events));
        s.push_str("\"phases\": {");
        let mut first = true;
        for phase in Phase::ALL {
            let t = self.phase(phase);
            if t.count == 0 {
                continue;
            }
            if !first {
                s.push_str(", ");
            }
            first = false;
            s.push_str(&format!(
                "\"{}\": {{\"spans\": {}, \"rows\": {}, \"cycles\": {}, \"wall_nanos\": {}, \
                 \"cycles_per_row\": {:.4}}}",
                phase.label(),
                t.count,
                t.rows,
                t.cycles,
                t.wall_nanos,
                t.cycles_per_row()
            ));
        }
        s.push_str("}, \"selection_decisions\": {");
        for (i, strat) in SelectionStrategy::ALL.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{}\": {}", strat.label(), self.selection_count(*strat)));
        }
        s.push_str("}, \"agg_decisions\": {");
        for (i, strat) in AggStrategy::ALL.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{}\": {}", strat.label(), self.agg_count(*strat)));
        }
        s.push_str("}, \"events_recorded\": ");
        s.push_str(&self.events.len().to_string());
        s.push('}');
        s
    }

    /// Export the span/decision event log as Chrome trace-event JSON,
    /// loadable in `chrome://tracing` and Perfetto. Requires a
    /// [`ProfileLevel::Spans`] profile (`Counters` has no events and
    /// produces an empty `traceEvents` array).
    ///
    /// Spans become `ph:"X"` *complete* events — `tid` is the worker,
    /// `name` is the phase label, `args` carry the span coordinates —
    /// and strategy decisions become `ph:"I"` thread-scoped *instant*
    /// events whose `args` are the chooser's inputs. Timestamps convert
    /// the raw TSC start stamps to microseconds relative to the earliest
    /// event, so all workers land on one coherent timeline.
    pub fn to_chrome_trace(&self) -> String {
        self.to_chrome_trace_with_hz(bipie_metrics::tsc_hz())
    }

    /// [`QueryProfile::to_chrome_trace`] with an explicit TSC frequency
    /// (tests pass a fixed `hz` so output is deterministic on any host;
    /// `1e6` makes one cycle exactly one microsecond).
    pub fn to_chrome_trace_with_hz(&self, hz: f64) -> String {
        let base = self
            .events
            .iter()
            .map(|e| match e {
                TraceEvent::Span { start_cycles, .. } => *start_cycles,
                TraceEvent::SelectionDecision { at_cycles, .. }
                | TraceEvent::AggDecision { at_cycles, .. } => *at_cycles,
            })
            .min()
            .unwrap_or(0);
        let us = |cycles: u64| cycles as f64 / hz * 1e6;
        let rel_us = |cycles: u64| us(cycles.saturating_sub(base));
        let ord = |id: u32| -> i64 {
            if id == NO_ID {
                -1
            } else {
                id as i64
            }
        };

        let mut events: Vec<String> = Vec::with_capacity(self.events.len() + self.workers);
        // Name the worker rows up front so Perfetto's track labels are
        // stable regardless of which worker recorded first.
        let mut workers: Vec<u32> = self
            .events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Span { worker, .. } | TraceEvent::AggDecision { worker, .. } => {
                    Some(*worker)
                }
                TraceEvent::SelectionDecision { .. } => None,
            })
            .collect();
        workers.sort_unstable();
        workers.dedup();
        for w in &workers {
            events.push(format!(
                "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, \"tid\": {w}, \
                 \"args\": {{\"name\": \"worker {w}\"}}}}"
            ));
        }

        // Decisions carry no worker coordinate of their own (selection
        // decisions follow their batch's span in the same tracer's log),
        // so track the current worker through the worker-major event walk.
        let mut current_worker = 0u32;
        for e in &self.events {
            match e {
                TraceEvent::Span { phase, worker, loc, rows, start_cycles, cycles, wall_nanos } => {
                    current_worker = *worker;
                    let mut args = format!(
                        "\"segment\": {}, \"morsel\": {}, \"rows\": {rows}, \
                         \"cycles\": {cycles}, \"wall_nanos\": {wall_nanos}, \
                         \"stolen\": {}",
                        ord(loc.segment),
                        ord(loc.morsel),
                        loc.stolen
                    );
                    if let Some(s) = loc.selection {
                        args.push_str(&format!(", \"selection\": \"{}\"", s.label()));
                    }
                    if let Some(a) = loc.agg {
                        args.push_str(&format!(", \"agg\": \"{}\"", a.label()));
                    }
                    events.push(format!(
                        "{{\"name\": \"{}\", \"cat\": \"phase\", \"ph\": \"X\", \"pid\": 0, \
                         \"tid\": {worker}, \"ts\": {:.3}, \"dur\": {:.3}, \"args\": {{{args}}}}}",
                        phase.label(),
                        rel_us(*start_cycles),
                        us(*cycles),
                    ));
                }
                TraceEvent::SelectionDecision {
                    at_cycles,
                    segment,
                    morsel,
                    row_start,
                    rows,
                    bits,
                    observed_selectivity,
                    chosen,
                    forced,
                } => {
                    events.push(format!(
                        "{{\"name\": \"decision:selection\", \"cat\": \"decision\", \
                         \"ph\": \"I\", \"s\": \"t\", \"pid\": 0, \"tid\": {current_worker}, \
                         \"ts\": {:.3}, \"args\": {{\"segment\": {}, \"morsel\": {}, \
                         \"row_start\": {row_start}, \"rows\": {rows}, \"bits\": {bits}, \
                         \"observed_selectivity\": {observed_selectivity:.4}, \
                         \"chosen\": \"{}\", \"forced\": {forced}}}}}",
                        rel_us(*at_cycles),
                        ord(*segment),
                        ord(*morsel),
                        chosen.label(),
                    ));
                }
                TraceEvent::AggDecision {
                    at_cycles,
                    segment,
                    worker,
                    num_groups_effective,
                    num_sums,
                    num_minmax,
                    est_selectivity,
                    all_packed_narrow,
                    multi_layout_fits,
                    chosen,
                    forced,
                } => {
                    current_worker = *worker;
                    events.push(format!(
                        "{{\"name\": \"decision:agg\", \"cat\": \"decision\", \"ph\": \"I\", \
                         \"s\": \"t\", \"pid\": 0, \"tid\": {worker}, \"ts\": {:.3}, \
                         \"args\": {{\"segment\": {}, \"num_groups_effective\": \
                         {num_groups_effective}, \"num_sums\": {num_sums}, \"num_minmax\": \
                         {num_minmax}, \"est_selectivity\": {est_selectivity:.4}, \
                         \"all_packed_narrow\": {all_packed_narrow}, \"multi_layout_fits\": \
                         {multi_layout_fits}, \"chosen\": \"{}\", \"forced\": {forced}}}}}",
                        rel_us(*at_cycles),
                        ord(*segment),
                        chosen.label(),
                    ));
                }
            }
        }
        format!("{{\"displayTimeUnit\": \"ms\", \"traceEvents\": [{}]}}", events.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_tracer_records_nothing_and_reads_no_clock() {
        let mut t = Tracer::new(ProfileLevel::Off, 0);
        assert!(!t.enabled());
        let s = t.start();
        assert!(s.0.is_none(), "Off must not read timestamps");
        t.span(Phase::Selection, SpanLoc::none(), 100, s);
        t.decision_selection(0, 0, 0, 100, 8, 0.5, SelectionStrategy::Gather, false);
        t.decision_agg(0, 8, 2, 0, 0.5, true, true, AggStrategy::InRegister, false);
        let mut p = QueryProfile::new(ProfileLevel::Off);
        p.absorb(t);
        assert!(p.is_empty());
        assert!(p.events.is_empty());
    }

    /// With the profiler compiled out, every level behaves like `Off`: no
    /// clock reads, no event storage, nothing absorbed.
    #[cfg(feature = "no_profiler")]
    #[test]
    fn compiled_out_profiler_is_inert_at_every_level() {
        for level in [ProfileLevel::Off, ProfileLevel::Counters, ProfileLevel::Spans] {
            let mut t = Tracer::new(level, 0);
            assert!(!t.enabled(), "{level:?}");
            let s = t.start();
            assert!(s.0.is_none(), "{level:?} must not read timestamps");
            t.span(Phase::Selection, SpanLoc::none(), 100, s);
            assert_eq!(t.events.capacity(), 0, "{level:?} must not allocate");
            let mut p = QueryProfile::new(level);
            p.absorb(t);
            assert!(p.is_empty(), "{level:?}");
        }
    }

    // The recording-behavior tests below are meaningless when the profiler
    // is compiled out (`Tracer::enabled()` is a constant false), so they
    // only build in the normal configuration.

    #[cfg(not(feature = "no_profiler"))]
    #[test]
    fn counters_accumulate_without_storing_events() {
        let mut t = Tracer::new(ProfileLevel::Counters, 1);
        let s = t.start();
        assert!(s.0.is_some());
        t.span(Phase::Unpack, SpanLoc::at(0, 0), 4096, s);
        t.decision_selection(0, 0, 0, 4096, 12, 0.25, SelectionStrategy::Compact, false);
        assert_eq!(t.events.capacity(), 0, "Counters must not allocate an event log");
        let mut p = QueryProfile::new(ProfileLevel::Counters);
        p.absorb(t);
        assert!(!p.is_empty());
        assert_eq!(p.phase(Phase::Unpack).count, 1);
        assert_eq!(p.phase(Phase::Unpack).rows, 4096);
        assert_eq!(p.selection_count(SelectionStrategy::Compact), 1);
        assert!(p.events.is_empty());
    }

    #[cfg(not(feature = "no_profiler"))]
    #[test]
    fn spans_store_events_and_overflow_drops_new_ones() {
        let mut t = Tracer::with_capacity(ProfileLevel::Spans, 0, 2);
        for i in 0..5 {
            let s = t.start();
            t.span(Phase::Selection, SpanLoc::at(0, i), 10, s);
        }
        assert_eq!(t.events.len(), 2, "capacity bounds the log");
        assert_eq!(t.dropped(), 3);
        // Counters keep counting past the overflow.
        assert_eq!(t.phases[Phase::Selection as usize].count, 5);
        let mut p = QueryProfile::new(ProfileLevel::Spans);
        p.absorb(t);
        assert_eq!(p.dropped_events, 3);
        assert_eq!(p.events.len(), 2);
        // The retained events are the *earliest* (keep-first policy).
        assert!(matches!(
            &p.events[0],
            TraceEvent::Span { loc, .. } if loc.morsel == 0
        ));
    }

    #[cfg(not(feature = "no_profiler"))]
    #[test]
    fn absorb_merges_multiple_workers() {
        let mut p = QueryProfile::new(ProfileLevel::Spans);
        for w in 0..3u32 {
            let mut t = Tracer::new(ProfileLevel::Spans, w);
            let s = t.start();
            t.span(Phase::Aggregation, SpanLoc::at(w, 0), 100, s);
            t.decision_agg(w, 8, 1, 0, 1.0, true, true, AggStrategy::InRegister, false);
            p.absorb(t);
        }
        assert_eq!(p.workers, 3);
        assert_eq!(p.phase(Phase::Aggregation).count, 3);
        assert_eq!(p.agg_count(AggStrategy::InRegister), 3);
        assert_eq!(p.events.len(), 6);
    }

    #[cfg(not(feature = "no_profiler"))]
    #[test]
    fn explain_and_json_render() {
        let mut t = Tracer::new(ProfileLevel::Spans, 0);
        let s = t.start();
        t.span(Phase::SegmentScan, SpanLoc::at(2, 0).with_stolen(true), 4096, s);
        let s = t.start();
        t.span(
            Phase::Selection,
            SpanLoc::at(2, 0).with_selection(SelectionStrategy::Gather),
            4096,
            s,
        );
        let s = t.start();
        t.span(
            Phase::Aggregation,
            SpanLoc::at(2, 0)
                .with_selection(SelectionStrategy::Gather)
                .with_agg(AggStrategy::SortBased),
            4096,
            s,
        );
        t.decision_selection(2, 0, 0, 4096, 14, 0.01, SelectionStrategy::Gather, false);
        t.decision_agg(2, 64, 1, 0, 0.01, true, true, AggStrategy::SortBased, false);
        let mut p = QueryProfile::new(ProfileLevel::Spans);
        p.absorb(t);

        let explain = p.render_explain(&ExecStats::default());
        assert!(explain.contains("segment 2"), "{explain}");
        assert!(explain.contains("steals=1"), "{explain}");
        assert!(explain.contains("decision agg: Sort"), "{explain}");
        assert!(explain.contains("Gather"), "{explain}");
        assert!(explain.contains("bits=14"), "{explain}");

        let json = p.to_json();
        assert!(json.contains("\"segment_scan\""), "{json}");
        assert!(json.contains("\"Gather\": 1"), "{json}");
        assert!(json.contains("\"Sort\": 1"), "{json}");
        // Dependency-free JSON must at least be brace-balanced.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes, "{json}");
    }

    #[test]
    fn empty_profile_renders_hint() {
        let p = QueryProfile::new(ProfileLevel::Off);
        let explain = p.render_explain(&ExecStats::default());
        assert!(explain.contains("profiling off"), "{explain}");
    }
}
