//! The Filter component (§3, §4).
//!
//! "The filter component evaluates the filter expression on a columnar-
//! oriented batch of records, combines the result with information about
//! deleted records, and produces a selection vector indicating which
//! records are selected by the query."
//!
//! Filters here are conjunctions of column-vs-constant comparisons (the
//! ad-hoc analytical shape, e.g. Q1's `l_shipdate <= DATE '1998-09-02'`).
//! Evaluation works **on encoded data** wherever possible:
//!
//! * bit-packed columns compare their normalized (frame-of-reference)
//!   values against the translated constant — no decode to logical values;
//! * dictionary columns (string or integer) translate the predicate into
//!   the *code* domain using the sorted dictionary, then compare codes;
//! * other encodings decode to `i64` and use the SIMD `i64` comparison.
//!
//! The same translation powers **segment elimination**: a predicate whose
//! translated constant falls outside the segment's min/max proves the
//! segment contributes no rows (§2.1).

use bipie_columnstore::encoding::{EncodedColumn, RleColumn};
use bipie_columnstore::{LogicalType, Segment, Table, Value};
use bipie_toolbox::cmp::{self, CmpOp};
use bipie_toolbox::runspan::{enc_filter_codes_bitset, enc_intersect_spans};
use bipie_toolbox::selvec::{REJECTED, SELECTED};
use bipie_toolbox::{RunSpanVec, SimdLevel};

use crate::error::{EngineError, Result};

/// A filter predicate over named columns.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// `column OP value`.
    Cmp {
        /// Column name.
        column: String,
        /// Comparison operator.
        op: CmpOp,
        /// Constant operand.
        value: Value,
    },
    /// `lo <= column <= hi` (integer-like columns only).
    Between {
        /// Column name.
        column: String,
        /// Inclusive lower bound.
        lo: Value,
        /// Inclusive upper bound.
        hi: Value,
    },
    /// Conjunction.
    And(Vec<Predicate>),
}

macro_rules! cmp_ctor {
    ($(#[$doc:meta])* $name:ident, $op:expr) => {
        $(#[$doc])*
        pub fn $name(column: impl Into<String>, value: Value) -> Predicate {
            Predicate::Cmp { column: column.into(), op: $op, value }
        }
    };
}

impl Predicate {
    cmp_ctor!(
        /// `column == value`
        eq,
        CmpOp::Eq
    );
    cmp_ctor!(
        /// `column != value`
        ne,
        CmpOp::Ne
    );
    cmp_ctor!(
        /// `column < value`
        lt,
        CmpOp::Lt
    );
    cmp_ctor!(
        /// `column <= value`
        le,
        CmpOp::Le
    );
    cmp_ctor!(
        /// `column > value`
        gt,
        CmpOp::Gt
    );
    cmp_ctor!(
        /// `column >= value`
        ge,
        CmpOp::Ge
    );

    /// `lo <= column <= hi` (inclusive).
    pub fn between(column: impl Into<String>, lo: Value, hi: Value) -> Predicate {
        Predicate::Between { column: column.into(), lo, hi }
    }

    /// Conjunction of predicates.
    pub fn and(preds: Vec<Predicate>) -> Predicate {
        Predicate::And(preds)
    }

    /// Resolve names and type-check against a table schema.
    pub fn resolve(&self, table: &Table) -> Result<ResolvedPredicate> {
        Ok(ResolvedPredicate { node: self.resolve_node(table)? })
    }

    fn resolve_node(&self, table: &Table) -> Result<PNode> {
        match self {
            Predicate::Cmp { column, op, value } => {
                let col = table
                    .column_index(column)
                    .ok_or_else(|| EngineError::UnknownColumn(column.clone()))?;
                let ty = table.specs()[col].ty;
                match (ty, value) {
                    (LogicalType::Str, Value::Str(s)) => {
                        Ok(PNode::StrCmp { col, op: *op, value: s.as_ref().to_owned() })
                    }
                    (LogicalType::Str, _) | (_, Value::Str(_)) => Err(EngineError::TypeMismatch {
                        column: column.clone(),
                        detail: "string/integer comparison".into(),
                    }),
                    (_, v) => {
                        if v.logical_type() != ty {
                            return Err(EngineError::TypeMismatch {
                                column: column.clone(),
                                detail: format!(
                                    "column is {:?}, constant is {:?}",
                                    ty,
                                    v.logical_type()
                                ),
                            });
                        }
                        // PANIC: the type-mismatch branch just above already
                        // rejected non-integer-like constants.
                        Ok(PNode::IntCmp { col, op: *op, c: v.as_storage_i64().unwrap() })
                    }
                }
            }
            Predicate::Between { column, lo, hi } => {
                let col = table
                    .column_index(column)
                    .ok_or_else(|| EngineError::UnknownColumn(column.clone()))?;
                let ty = table.specs()[col].ty;
                let (lo, hi) = match (lo.as_storage_i64(), hi.as_storage_i64()) {
                    (Some(lo), Some(hi)) if ty.is_integerlike() => (lo, hi),
                    _ => {
                        return Err(EngineError::TypeMismatch {
                            column: column.clone(),
                            detail: "BETWEEN requires an integer-like column".into(),
                        })
                    }
                };
                Ok(PNode::IntBetween { col, lo, hi })
            }
            Predicate::And(preds) => {
                let nodes: Result<Vec<PNode>> =
                    preds.iter().map(|p| p.resolve_node(table)).collect();
                Ok(PNode::And(nodes?))
            }
        }
    }

    /// Row-level evaluation against logical values (mutable-region rows and
    /// the oracle executor).
    pub fn eval_row(&self, value_of: &impl Fn(&str) -> Value) -> bool {
        match self {
            Predicate::Cmp { column, op, value } => {
                let v = value_of(column);
                match (&v, value) {
                    (Value::Str(a), Value::Str(b)) => op.eval(&**a, &**b),
                    _ => op.eval(
                        // PANIC: plan construction rejected mixed string /
                        // integer comparisons, so both sides are integer-like.
                        v.as_storage_i64().expect("typed"),
                        value.as_storage_i64().expect("typed"), // PANIC: see above
                    ),
                }
            }
            Predicate::Between { column, lo, hi } => {
                // PANIC: BETWEEN is integer-only by construction (plan
                // compilation rejects string bounds), same on both lines.
                let v = value_of(column).as_storage_i64().expect("typed");
                // PANIC: same integer-only BETWEEN construction as above.
                v >= lo.as_storage_i64().expect("typed") && v <= hi.as_storage_i64().expect("typed")
            }
            Predicate::And(preds) => preds.iter().all(|p| p.eval_row(value_of)),
        }
    }
}

#[derive(Debug, Clone)]
enum PNode {
    IntCmp { col: usize, op: CmpOp, c: i64 },
    IntBetween { col: usize, lo: i64, hi: i64 },
    StrCmp { col: usize, op: CmpOp, value: String },
    And(Vec<PNode>),
}

/// A predicate resolved against a table schema.
#[derive(Debug, Clone)]
pub struct ResolvedPredicate {
    node: PNode,
}

/// Reusable scratch buffers for filter evaluation.
#[derive(Debug, Default)]
pub struct FilterScratch {
    u32_buf: Vec<u32>,
    i64_buf: Vec<i64>,
    tmp_sel: Vec<u8>,
    /// Dictionary-id bitset for conjunction fusion over dict columns.
    dict_bits: Vec<u64>,
    /// Span scratch for run-span evaluation of conjunctions.
    tmp_spans: Vec<RunSpanVec>,
}

/// Outcome of translating a comparison into a bounded unsigned domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DomainCmp {
    /// Every row matches.
    All,
    /// No row matches.
    None,
    /// Compare against the translated constant.
    Cmp(CmpOp, u64),
    /// Inclusive range in the translated domain.
    Between(u64, u64),
}

/// Translate `x OP c` (logical) into the normalized domain `[0, range]`
/// where `normalized = logical - reference`.
fn translate_cmp(op: CmpOp, c: i64, reference: i64, range: u64) -> DomainCmp {
    let cn = c as i128 - reference as i128;
    if cn < 0 {
        match op {
            CmpOp::Eq | CmpOp::Lt | CmpOp::Le => DomainCmp::None,
            CmpOp::Ne | CmpOp::Gt | CmpOp::Ge => DomainCmp::All,
        }
    } else if cn > range as i128 {
        match op {
            CmpOp::Eq | CmpOp::Gt | CmpOp::Ge => DomainCmp::None,
            CmpOp::Ne | CmpOp::Lt | CmpOp::Le => DomainCmp::All,
        }
    } else {
        DomainCmp::Cmp(op, cn as u64)
    }
}

/// Translate `lo <= x <= hi` (logical) into the normalized domain.
fn translate_between(lo: i64, hi: i64, reference: i64, range: u64) -> DomainCmp {
    let lon = (lo as i128 - reference as i128).max(0);
    let hin = (hi as i128 - reference as i128).min(range as i128);
    if lon > hin {
        DomainCmp::None
    } else if lon == 0 && hin == range as i128 {
        DomainCmp::All
    } else {
        DomainCmp::Between(lon as u64, hin as u64)
    }
}

/// Translate a string comparison into the sorted-dictionary code domain.
fn translate_str_cmp<T: Ord + ?Sized>(
    op: CmpOp,
    value: &T,
    dict_iter: impl Fn(&T) -> (usize, Option<usize>), // (partition points) see below
) -> DomainCmp {
    // dict_iter returns (k_lt, exact): k_lt = #entries < value, exact = code
    // of an exact match if present.
    let (k_lt, exact) = dict_iter(value);
    match op {
        CmpOp::Eq => match exact {
            Some(code) => DomainCmp::Cmp(CmpOp::Eq, code as u64),
            None => DomainCmp::None,
        },
        CmpOp::Ne => match exact {
            Some(code) => DomainCmp::Cmp(CmpOp::Ne, code as u64),
            None => DomainCmp::All,
        },
        // x < value  <=>  code < k_lt
        CmpOp::Lt => threshold_lt(k_lt),
        // x <= value <=>  code < k_lt + (exact ? 1 : 0)
        CmpOp::Le => threshold_lt(k_lt + exact.map_or(0, |_| 1)),
        // x >= value <=>  code >= k_lt
        CmpOp::Ge => threshold_ge(k_lt),
        // x > value  <=>  code >= k_lt + (exact ? 1 : 0)
        CmpOp::Gt => threshold_ge(k_lt + exact.map_or(0, |_| 1)),
    }
}

fn threshold_lt(k: usize) -> DomainCmp {
    if k == 0 {
        DomainCmp::None
    } else {
        DomainCmp::Cmp(CmpOp::Lt, k as u64)
    }
}

fn threshold_ge(k: usize) -> DomainCmp {
    if k == 0 {
        DomainCmp::All
    } else {
        DomainCmp::Cmp(CmpOp::Ge, k as u64)
    }
}

impl ResolvedPredicate {
    /// True if segment metadata proves no row can match (§2.1 segment
    /// elimination).
    pub fn eliminates_segment(&self, seg: &Segment) -> bool {
        Self::node_eliminates(&self.node, seg)
    }

    fn node_eliminates(node: &PNode, seg: &Segment) -> bool {
        match node {
            PNode::IntCmp { col, op, c } => {
                let m = seg.meta(*col);
                matches!(translate_cmp(*op, *c, m.min, m.range()), DomainCmp::None)
            }
            PNode::IntBetween { col, lo, hi } => {
                let m = seg.meta(*col);
                matches!(translate_between(*lo, *hi, m.min, m.range()), DomainCmp::None)
            }
            PNode::StrCmp { col, op, value } => match seg.column(*col) {
                EncodedColumn::StrDict(d) => {
                    matches!(str_domain_cmp(d.dict(), *op, value), DomainCmp::None)
                }
                _ => false,
            },
            PNode::And(nodes) => nodes.iter().any(|n| Self::node_eliminates(n, seg)),
        }
    }

    /// Evaluate the predicate over batch rows `[start, start+out.len())` of
    /// a segment, writing the canonical selection byte mask into `out`
    /// (deleted rows are merged by the caller).
    pub fn eval_batch(
        &self,
        seg: &Segment,
        start: usize,
        out: &mut [u8],
        scratch: &mut FilterScratch,
        level: SimdLevel,
    ) {
        Self::eval_node(&self.node, seg, start, out, scratch, level);
    }

    fn eval_node(
        node: &PNode,
        seg: &Segment,
        start: usize,
        out: &mut [u8],
        scratch: &mut FilterScratch,
        level: SimdLevel,
    ) {
        let n = out.len();
        match node {
            PNode::IntCmp { col, op, c } => {
                eval_int_domain(seg, *col, start, out, scratch, level, LogicalCmp::Cmp(*op, *c));
            }
            PNode::IntBetween { col, lo, hi } => {
                eval_int_domain(
                    seg,
                    *col,
                    start,
                    out,
                    scratch,
                    level,
                    LogicalCmp::Between(*lo, *hi),
                );
            }
            PNode::StrCmp { col, op, value } => match seg.column(*col) {
                EncodedColumn::StrDict(d) => {
                    let dc = str_domain_cmp(d.dict(), *op, value);
                    apply_domain_cmp_packed(d.codes(), dc, start, out, scratch, level);
                }
                // PANIC: string columns always dictionary-encode (see
                // `encode_strings`), so StrCmp only meets StrDict.
                other => unreachable!("string column encoded as {:?}", other.encoding()),
            },
            PNode::And(nodes) => {
                // Dictionary predicate pre-evaluation (DESIGN.md §13):
                // conjuncts over the *same* dictionary column fuse into one
                // id-bitset built by evaluating each comparison once per
                // dictionary entry, followed by a single membership pass
                // over the codes — instead of unpacking and comparing the
                // codes once per conjunct.
                let annotated: Vec<Option<(usize, DomainCmp)>> =
                    nodes.iter().map(|node| dict_conjunct(node, seg)).collect();
                let mut groups: Vec<(usize, Vec<DomainCmp>)> = Vec::new();
                let mut rest: Vec<&PNode> = Vec::new();
                for (node, ann) in nodes.iter().zip(&annotated) {
                    match ann {
                        Some((col, dc))
                            if annotated.iter().flatten().filter(|(c, _)| c == col).count()
                                >= 2 =>
                        {
                            match groups.iter_mut().find(|(c, _)| c == col) {
                                Some((_, dcs)) => dcs.push(*dc),
                                None => groups.push((*col, vec![*dc])),
                            }
                        }
                        _ => rest.push(node),
                    }
                }
                let mut tmp = std::mem::take(&mut scratch.tmp_sel);
                tmp.clear();
                tmp.resize(n, 0);
                let mut first = true;
                for (col, dcs) in &groups {
                    let target: &mut [u8] = if first { &mut *out } else { &mut tmp };
                    eval_dict_fused(seg, *col, dcs, start, target, scratch, level);
                    if !first {
                        for (o, t) in out.iter_mut().zip(&tmp) {
                            *o &= *t;
                        }
                    }
                    first = false;
                }
                for node in rest {
                    let target: &mut [u8] = if first { &mut *out } else { &mut tmp };
                    Self::eval_node(node, seg, start, target, scratch, level);
                    if !first {
                        for (o, t) in out.iter_mut().zip(&tmp) {
                            *o &= *t;
                        }
                    }
                    first = false;
                }
                // PANIC: plan compilation drops empty conjunctions, so at
                // least one group or plain conjunct wrote into `out`.
                assert!(!first, "non-empty conjunction");
                scratch.tmp_sel = tmp;
            }
        }
    }

    /// True when every column this predicate references is RLE-encoded in
    /// `seg` (string comparisons are never eligible), so the predicate can
    /// be evaluated run-wise into a run-granular selection via
    /// [`ResolvedPredicate::eval_batch_spans`].
    pub fn span_eligible(&self, seg: &Segment) -> bool {
        Self::node_span_eligible(&self.node, seg)
    }

    fn node_span_eligible(node: &PNode, seg: &Segment) -> bool {
        match node {
            PNode::IntCmp { col, .. } | PNode::IntBetween { col, .. } => {
                matches!(seg.column(*col), EncodedColumn::Rle(_))
            }
            PNode::StrCmp { .. } => false,
            PNode::And(nodes) => nodes.iter().all(|n| Self::node_span_eligible(n, seg)),
        }
    }

    /// Evaluate the predicate run-wise over batch rows `[start, start+len)`
    /// of a segment, producing a *batch-relative* run-granular selection
    /// (one comparison per run instead of one per row, O(runs)). Callers
    /// must check [`ResolvedPredicate::span_eligible`] first; deleted rows
    /// are the caller's concern, exactly as with
    /// [`ResolvedPredicate::eval_batch`].
    pub fn eval_batch_spans(
        &self,
        seg: &Segment,
        start: usize,
        len: usize,
        out: &mut RunSpanVec,
        scratch: &mut FilterScratch,
    ) {
        Self::eval_node_spans(&self.node, seg, start, len, out, scratch);
    }

    fn eval_node_spans(
        node: &PNode,
        seg: &Segment,
        start: usize,
        len: usize,
        out: &mut RunSpanVec,
        scratch: &mut FilterScratch,
    ) {
        match node {
            PNode::IntCmp { col, op, c } => {
                eval_rle_spans(rle_col(seg, *col), start, len, LogicalCmp::Cmp(*op, *c), out);
            }
            PNode::IntBetween { col, lo, hi } => {
                eval_rle_spans(rle_col(seg, *col), start, len, LogicalCmp::Between(*lo, *hi), out);
            }
            // PANIC: span eligibility rejects string predicates.
            PNode::StrCmp { .. } => unreachable!("string predicates are not span-eligible"),
            PNode::And(nodes) => {
                // PANIC: plan compilation drops empty conjunctions.
                let (first, rest) = nodes.split_first().expect("non-empty conjunction");
                Self::eval_node_spans(first, seg, start, len, out, scratch);
                if rest.is_empty() {
                    return;
                }
                let mut a = scratch.tmp_spans.pop().unwrap_or_default();
                let mut b = scratch.tmp_spans.pop().unwrap_or_default();
                for node in rest {
                    if out.is_empty() {
                        break;
                    }
                    Self::eval_node_spans(node, seg, start, len, &mut a, scratch);
                    enc_intersect_spans(out.spans(), a.spans(), &mut b);
                    std::mem::swap(out, &mut b);
                }
                scratch.tmp_spans.push(a);
                scratch.tmp_spans.push(b);
            }
        }
    }
}

/// The run-span work ratio of a predicate on one segment: total runs its
/// RLE columns walk per batch row. `None` when the predicate is not
/// span-eligible for the segment. Used by the strategy chooser to cost the
/// run-wise path.
pub(crate) fn span_runs_fraction(pred: &ResolvedPredicate, seg: &Segment) -> Option<f64> {
    if !pred.span_eligible(seg) {
        return None;
    }
    let mut runs = 0usize;
    let mut rows = 0usize;
    collect_rle_runs(&pred.node, seg, &mut runs, &mut rows);
    if rows == 0 {
        return Some(0.0);
    }
    Some(runs as f64 / rows as f64)
}

fn collect_rle_runs(node: &PNode, seg: &Segment, runs: &mut usize, rows: &mut usize) {
    match node {
        PNode::IntCmp { col, .. } | PNode::IntBetween { col, .. } => {
            let r = rle_col(seg, *col);
            *runs += r.num_runs();
            *rows += r.len();
        }
        PNode::StrCmp { .. } => {}
        PNode::And(nodes) => {
            for n in nodes {
                collect_rle_runs(n, seg, runs, rows);
            }
        }
    }
}

/// The column of `seg` that `col` indexes, as an RLE column.
fn rle_col(seg: &Segment, col: usize) -> &RleColumn {
    match seg.column(col) {
        EncodedColumn::Rle(r) => r,
        // PANIC: span eligibility checked every referenced column is RLE.
        other => unreachable!("span evaluation on non-RLE column {:?}", other.encoding()),
    }
}

/// Walk the runs of `r` overlapping `[start, start+len)`, pushing the rows
/// of accepted runs as batch-relative coalesced spans.
fn eval_rle_spans(
    r: &RleColumn,
    start: usize,
    len: usize,
    logical: LogicalCmp,
    out: &mut RunSpanVec,
) {
    out.clear();
    if len == 0 {
        return;
    }
    let ends = r.run_ends();
    let values = r.run_values();
    let batch_end = start + len;
    let mut run = r.run_index_of(start);
    let mut row = start;
    while row < batch_end {
        let run_end = (ends[run] as usize).min(batch_end);
        if logical.matches(values[run]) {
            out.push((row - start) as u32, (run_end - row) as u32);
        }
        row = run_end;
        run += 1;
    }
}

/// A conjunct that targets a dictionary-encoded column of `seg`, translated
/// into the code domain — the unit of dictionary conjunction fusion.
fn dict_conjunct(node: &PNode, seg: &Segment) -> Option<(usize, DomainCmp)> {
    match node {
        PNode::IntCmp { col, op, c } => match seg.column(*col) {
            EncodedColumn::IntDict(d) => {
                Some((*col, LogicalCmp::Cmp(*op, *c).to_code_domain(d.dict())))
            }
            _ => None,
        },
        PNode::IntBetween { col, lo, hi } => match seg.column(*col) {
            EncodedColumn::IntDict(d) => {
                Some((*col, LogicalCmp::Between(*lo, *hi).to_code_domain(d.dict())))
            }
            _ => None,
        },
        PNode::StrCmp { col, op, value } => match seg.column(*col) {
            EncodedColumn::StrDict(d) => Some((*col, str_domain_cmp(d.dict(), *op, value))),
            _ => None,
        },
        PNode::And(_) => None,
    }
}

/// Whether translated-domain comparison `dc` accepts dictionary id `code`.
fn domain_cmp_matches(dc: DomainCmp, code: u64) -> bool {
    match dc {
        DomainCmp::All => true,
        DomainCmp::None => false,
        DomainCmp::Cmp(op, c) => op.eval(code, c),
        DomainCmp::Between(lo, hi) => code >= lo && code <= hi,
    }
}

/// Evaluate a fused group of code-domain comparisons over one dictionary
/// column: build the id-bitset once over the dictionary, then run a single
/// membership pass over the codes.
fn eval_dict_fused(
    seg: &Segment,
    col: usize,
    dcs: &[DomainCmp],
    start: usize,
    out: &mut [u8],
    scratch: &mut FilterScratch,
    level: SimdLevel,
) {
    let (codes, dict_len) = match seg.column(col) {
        EncodedColumn::IntDict(d) => (d.codes(), d.dict().len()),
        EncodedColumn::StrDict(d) => (d.codes(), d.dict().len()),
        // PANIC: `dict_conjunct` only selects dictionary-encoded columns.
        other => unreachable!("fused non-dictionary column {:?}", other.encoding()),
    };
    scratch.dict_bits.clear();
    scratch.dict_bits.resize(dict_len.div_ceil(64), 0);
    for code in 0..dict_len as u64 {
        if dcs.iter().all(|&dc| domain_cmp_matches(dc, code)) {
            scratch.dict_bits[(code / 64) as usize] |= 1u64 << (code % 64);
        }
    }
    scratch.u32_buf.resize(out.len(), 0);
    codes.unpack_into_u32(start, &mut scratch.u32_buf, level);
    enc_filter_codes_bitset(&scratch.u32_buf, &scratch.dict_bits, out);
}

fn str_domain_cmp(dict: &[String], op: CmpOp, value: &str) -> DomainCmp {
    translate_str_cmp(op, value, |v: &str| {
        let k_lt = dict.partition_point(|d| d.as_str() < v);
        let exact = (k_lt < dict.len() && dict[k_lt] == v).then_some(k_lt);
        (k_lt, exact)
    })
}

/// A comparison in the logical `i64` domain, before encoding translation.
#[derive(Debug, Clone, Copy)]
enum LogicalCmp {
    Cmp(CmpOp, i64),
    Between(i64, i64),
}

impl LogicalCmp {
    /// Row-level evaluation in the logical domain (run-wise paths compare
    /// one run *value* instead of every row).
    fn matches(self, v: i64) -> bool {
        match self {
            LogicalCmp::Cmp(op, c) => op.eval(v, c),
            LogicalCmp::Between(lo, hi) => v >= lo && v <= hi,
        }
    }

    /// Translate into a frame-of-reference normalized domain `[0, range]`.
    fn to_normalized(self, reference: i64, range: u64) -> DomainCmp {
        match self {
            LogicalCmp::Cmp(op, c) => translate_cmp(op, c, reference, range),
            LogicalCmp::Between(lo, hi) => translate_between(lo, hi, reference, range),
        }
    }

    /// Translate into a sorted-integer-dictionary code domain.
    fn to_code_domain(self, dict: &[i64]) -> DomainCmp {
        match self {
            LogicalCmp::Cmp(op, c) => translate_str_cmp(op, &c, |v: &i64| {
                let k_lt = dict.partition_point(|d| d < v);
                let exact = (k_lt < dict.len() && dict[k_lt] == *v).then_some(k_lt);
                (k_lt, exact)
            }),
            LogicalCmp::Between(lo, hi) => {
                // codes in [#entries < lo, #entries <= hi)
                let k_lo = dict.partition_point(|d| *d < lo);
                let k_hi = dict.partition_point(|d| *d <= hi);
                if k_lo >= k_hi {
                    DomainCmp::None
                } else if k_lo == 0 && k_hi == dict.len() {
                    DomainCmp::All
                } else {
                    DomainCmp::Between(k_lo as u64, k_hi as u64 - 1)
                }
            }
        }
    }
}

/// Evaluate a logical comparison over an integer-like column batch.
fn eval_int_domain(
    seg: &Segment,
    col: usize,
    start: usize,
    out: &mut [u8],
    scratch: &mut FilterScratch,
    level: SimdLevel,
    logical: LogicalCmp,
) {
    if out.is_empty() {
        return;
    }
    match seg.column(col) {
        EncodedColumn::BitPack(c) if c.is_non_decreasing() => {
            // Monotonic range pruning (DESIGN.md §13): the selected rows
            // form a contiguous interval, found by boundary probes.
            fill_monotonic(&|row| c.get(row), start, out, logical);
        }
        EncodedColumn::BitPack(c) if c.bits() <= 32 => {
            // Encoded-domain fast path: compare normalized u32 values.
            let dc = logical.to_normalized(c.reference(), c.normalized_max());
            apply_domain_cmp_packed(c.normalized(), dc, start, out, scratch, level);
        }
        EncodedColumn::IntDict(d) => {
            // Code-domain path via the sorted dictionary.
            let dc = logical.to_code_domain(d.dict());
            apply_domain_cmp_packed(d.codes(), dc, start, out, scratch, level);
        }
        EncodedColumn::Rle(r) => {
            // Run-wise evaluation: one comparison per run overlapping the
            // batch, then a fill of the run's rows — O(runs) compares
            // (this is also the spill target when a run-span selection
            // must densify).
            let ends = r.run_ends();
            let values = r.run_values();
            let batch_end = start + out.len();
            let mut run = r.run_index_of(start);
            let mut row = start;
            while row < batch_end {
                let run_end = (ends[run] as usize).min(batch_end);
                let byte = if logical.matches(values[run]) { SELECTED } else { REJECTED };
                out[row - start..run_end - start].fill(byte);
                row = run_end;
                run += 1;
            }
        }
        EncodedColumn::Delta(d) if d.is_non_decreasing() => {
            // Monotonic range pruning via anchored boundary probes — no
            // delta replay of the whole batch.
            fill_monotonic(&|row| d.get(row), start, out, logical);
        }
        other => {
            // Generic path: decode logical values, compare as i64.
            scratch.i64_buf.resize(out.len(), 0);
            other.decode_i64_into(start, &mut scratch.i64_buf);
            match logical {
                LogicalCmp::Cmp(op, c) => cmp::cmp_i64(&scratch.i64_buf, op, c, out, level),
                LogicalCmp::Between(lo, hi) => {
                    cmp::between_i64(&scratch.i64_buf, lo, hi, out, level)
                }
            }
        }
    }
}

/// Fill the selection mask for a batch of a **non-decreasing** column using
/// at most two boundary binary searches: every comparison shape selects a
/// contiguous row interval (or, for `!=`, its complement), so whole batches
/// accept or reject without touching the codes.
fn fill_monotonic(get: &dyn Fn(usize) -> i64, start: usize, out: &mut [u8], logical: LogicalCmp) {
    let n = out.len();
    // Whole-batch accept from the boundary values — valid for every shape
    // except `!=` (whose accepted set is not an interval): if both ends of
    // a non-decreasing batch match an interval predicate, every row does.
    if !matches!(logical, LogicalCmp::Cmp(CmpOp::Ne, _))
        && logical.matches(get(start))
        && logical.matches(get(start + n - 1))
    {
        out.fill(SELECTED);
        return;
    }
    // First batch offset whose value is `>= bound` (`> bound` when
    // `strict`); non-decreasing order makes this a partition point.
    let search = |bound: i64, strict: bool| -> usize {
        let (mut lo, mut hi) = (0usize, n);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let v = get(start + mid);
            if v < bound || (strict && v == bound) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    };
    let (sel_lo, sel_hi, invert) = match logical {
        LogicalCmp::Cmp(CmpOp::Lt, c) => (0, search(c, false), false),
        LogicalCmp::Cmp(CmpOp::Le, c) => (0, search(c, true), false),
        LogicalCmp::Cmp(CmpOp::Ge, c) => (search(c, false), n, false),
        LogicalCmp::Cmp(CmpOp::Gt, c) => (search(c, true), n, false),
        LogicalCmp::Cmp(CmpOp::Eq, c) => (search(c, false), search(c, true), false),
        LogicalCmp::Cmp(CmpOp::Ne, c) => (search(c, false), search(c, true), true),
        LogicalCmp::Between(lo, hi) => (search(lo, false), search(hi, true), false),
    };
    let hi = sel_hi.max(sel_lo);
    out.fill(if invert { SELECTED } else { REJECTED });
    out[sel_lo..hi].fill(if invert { REJECTED } else { SELECTED });
}

/// Apply a domain comparison to a bit-packed unsigned payload.
fn apply_domain_cmp_packed(
    packed: &bipie_toolbox::bitpack::PackedVec,
    dc: DomainCmp,
    start: usize,
    out: &mut [u8],
    scratch: &mut FilterScratch,
    level: SimdLevel,
) {
    match dc {
        DomainCmp::All => out.fill(SELECTED),
        DomainCmp::None => out.fill(REJECTED),
        DomainCmp::Cmp(op, c) if packed.bits() <= 32 => {
            scratch.u32_buf.resize(out.len(), 0);
            packed.unpack_into_u32(start, &mut scratch.u32_buf, level);
            cmp::cmp_u32(&scratch.u32_buf, op, c as u32, out, level);
        }
        DomainCmp::Between(lo, hi) if packed.bits() <= 32 => {
            scratch.u32_buf.resize(out.len(), 0);
            packed.unpack_into_u32(start, &mut scratch.u32_buf, level);
            cmp::between_u32(&scratch.u32_buf, lo as u32, hi as u32, out, level);
        }
        DomainCmp::Cmp(op, c) => {
            // Wide packed values: unpack to u64, compare scalar.
            let mut buf = vec![0u64; out.len()];
            packed.unpack_into_u64(start, &mut buf, level);
            cmp::cmp_u64(&buf, op, c, out, level);
        }
        DomainCmp::Between(lo, hi) => {
            let mut buf = vec![0u64; out.len()];
            packed.unpack_into_u64(start, &mut buf, level);
            for (o, &v) in out.iter_mut().zip(&buf) {
                *o = if v >= lo && v <= hi { SELECTED } else { REJECTED };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bipie_columnstore::encoding::EncodingHint;
    use bipie_columnstore::{ColumnSpec, TableBuilder};

    fn test_table(hint: EncodingHint) -> Table {
        let mut b = TableBuilder::with_segment_rows(
            vec![
                ColumnSpec::new("flag", LogicalType::Str),
                ColumnSpec::new("v", LogicalType::I64).with_hint(hint),
            ],
            10_000,
        );
        for i in 0..1000i64 {
            let flag = ["A", "N", "R"][(i % 3) as usize];
            b.push_row(vec![Value::Str(flag.into()), Value::I64(i - 500)]);
        }
        b.finish()
    }

    fn eval_all(table: &Table, pred: &Predicate) -> Vec<bool> {
        let rp = pred.resolve(table).unwrap();
        let seg = &table.segments()[0];
        let mut out = vec![0u8; seg.num_rows()];
        let mut scratch = FilterScratch::default();
        rp.eval_batch(seg, 0, &mut out, &mut scratch, SimdLevel::detect());
        out.iter().map(|&b| b != 0).collect()
    }

    fn reference(table: &Table, pred: &Predicate) -> Vec<bool> {
        let seg = &table.segments()[0];
        (0..seg.num_rows())
            .map(|i| {
                pred.eval_row(&|name| {
                    let c = table.column_index(name).unwrap();
                    match seg.column(c) {
                        EncodedColumn::StrDict(d) => Value::Str(d.get(i).into()),
                        other => Value::I64(other.get_i64(i)),
                    }
                })
            })
            .collect()
    }

    #[test]
    fn int_predicates_match_reference_across_encodings() {
        for hint in
            [EncodingHint::BitPack, EncodingHint::Dict, EncodingHint::Rle, EncodingHint::Delta]
        {
            let t = test_table(hint);
            for pred in [
                Predicate::eq("v", Value::I64(0)),
                Predicate::ne("v", Value::I64(-500)),
                Predicate::lt("v", Value::I64(-100)),
                Predicate::le("v", Value::I64(499)),
                Predicate::gt("v", Value::I64(499)),
                Predicate::ge("v", Value::I64(500)),
                Predicate::between("v", Value::I64(-10), Value::I64(10)),
                Predicate::eq("v", Value::I64(99_999)), // out of domain
                Predicate::lt("v", Value::I64(-501)),   // below domain
                Predicate::ge("v", Value::I64(-500)),   // whole domain
            ] {
                assert_eq!(
                    eval_all(&t, &pred),
                    reference(&t, &pred),
                    "hint={hint:?} pred={pred:?}"
                );
            }
        }
    }

    #[test]
    fn str_predicates_match_reference() {
        let t = test_table(EncodingHint::Auto);
        for pred in [
            Predicate::eq("flag", Value::Str("N".into())),
            Predicate::ne("flag", Value::Str("A".into())),
            Predicate::lt("flag", Value::Str("N".into())),
            Predicate::le("flag", Value::Str("N".into())),
            Predicate::gt("flag", Value::Str("A".into())),
            Predicate::ge("flag", Value::Str("R".into())),
            Predicate::eq("flag", Value::Str("Z".into())), // not in dict
            Predicate::ne("flag", Value::Str("Z".into())),
            Predicate::lt("flag", Value::Str("B".into())), // between entries
            Predicate::gt("flag", Value::Str("B".into())),
        ] {
            assert_eq!(eval_all(&t, &pred), reference(&t, &pred), "pred={pred:?}");
        }
    }

    #[test]
    fn conjunction_intersects() {
        let t = test_table(EncodingHint::BitPack);
        let pred = Predicate::and(vec![
            Predicate::ge("v", Value::I64(0)),
            Predicate::lt("v", Value::I64(100)),
            Predicate::eq("flag", Value::Str("A".into())),
        ]);
        assert_eq!(eval_all(&t, &pred), reference(&t, &pred));
    }

    #[test]
    fn segment_elimination() {
        let t = test_table(EncodingHint::BitPack);
        let seg = &t.segments()[0]; // v in [-500, 499]
        let gone = Predicate::gt("v", Value::I64(1000)).resolve(&t).unwrap();
        assert!(gone.eliminates_segment(seg));
        let gone = Predicate::between("v", Value::I64(500), Value::I64(600)).resolve(&t).unwrap();
        assert!(gone.eliminates_segment(seg));
        let kept = Predicate::le("v", Value::I64(-500)).resolve(&t).unwrap();
        assert!(!kept.eliminates_segment(seg));
        let gone = Predicate::eq("flag", Value::Str("Z".into())).resolve(&t).unwrap();
        assert!(gone.eliminates_segment(seg));
        // Conjunction eliminates if ANY single conjunct eliminates (ranges
        // of separate conjuncts are not intersected).
        let gone = Predicate::and(vec![
            Predicate::ge("v", Value::I64(0)),
            Predicate::gt("v", Value::I64(1000)),
        ]);
        assert!(gone.resolve(&t).unwrap().eliminates_segment(seg));
        let kept = Predicate::and(vec![
            Predicate::ge("v", Value::I64(0)),
            Predicate::lt("v", Value::I64(-400)), // jointly impossible, individually possible
        ]);
        assert!(!kept.resolve(&t).unwrap().eliminates_segment(seg));
    }

    #[test]
    fn resolve_errors() {
        let t = test_table(EncodingHint::Auto);
        assert!(matches!(
            Predicate::eq("missing", Value::I64(1)).resolve(&t),
            Err(EngineError::UnknownColumn(_))
        ));
        assert!(matches!(
            Predicate::eq("flag", Value::I64(1)).resolve(&t),
            Err(EngineError::TypeMismatch { .. })
        ));
        assert!(matches!(
            Predicate::eq("v", Value::Str("x".into())).resolve(&t),
            Err(EngineError::TypeMismatch { .. })
        ));
        assert!(matches!(
            Predicate::between("flag", Value::I64(0), Value::I64(1)).resolve(&t),
            Err(EngineError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn batch_offsets() {
        let t = test_table(EncodingHint::BitPack);
        let seg = &t.segments()[0];
        let rp = Predicate::ge("v", Value::I64(0)).resolve(&t).unwrap();
        let mut scratch = FilterScratch::default();
        let mut out = vec![0u8; 100];
        rp.eval_batch(seg, 450, &mut out, &mut scratch, SimdLevel::detect());
        // Rows 450..500 have v in [-50, -1] (rejected); 500..550 in [0, 49].
        assert!(out[..50].iter().all(|&b| b == 0));
        assert!(out[50..].iter().all(|&b| b == 0xFF));
    }
}
