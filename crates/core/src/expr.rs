//! Scalar expressions over decoded column vectors.
//!
//! In MemSQL these are compiled to machine code with LLVM; the key contract
//! (§3) is that "generated functions always operate on decompressed column
//! data" so expressions need not be specialized per encoding. This module
//! implements the same contract with a vectorized interpreter: expressions
//! evaluate over `i64` vectors of decoded values, batch at a time.
//!
//! Arithmetic is `i64` with wrapping semantics ruled out up front: interval
//! analysis over segment metadata ([`ResolvedExpr::value_range`]) proves
//! that neither the expression nor its sum over a segment can overflow
//! (§2.1's metadata-driven overflow avoidance), and execution then uses
//! plain adds/multiplies.

use crate::error::{EngineError, Result};

/// A scalar expression tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// A column reference by name.
    Col(String),
    /// An integer literal (storage-scaled: cents for decimals, days for
    /// dates).
    Lit(i64),
    /// Addition.
    Add(Box<Expr>, Box<Expr>),
    /// Subtraction.
    Sub(Box<Expr>, Box<Expr>),
    /// Multiplication.
    Mul(Box<Expr>, Box<Expr>),
    /// Negation.
    Neg(Box<Expr>),
}

#[allow(clippy::should_implement_trait)] // fluent builder methods, not operator traits
impl Expr {
    /// Column reference.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Col(name.into())
    }

    /// Integer literal.
    pub fn lit(v: i64) -> Expr {
        Expr::Lit(v)
    }

    /// `self + rhs`.
    pub fn add(self, rhs: Expr) -> Expr {
        Expr::Add(Box::new(self), Box::new(rhs))
    }

    /// `self - rhs`.
    pub fn sub(self, rhs: Expr) -> Expr {
        Expr::Sub(Box::new(self), Box::new(rhs))
    }

    /// `self * rhs`.
    pub fn mul(self, rhs: Expr) -> Expr {
        Expr::Mul(Box::new(self), Box::new(rhs))
    }

    /// `-self`.
    pub fn neg(self) -> Expr {
        Expr::Neg(Box::new(self))
    }

    /// True if the expression is a bare column reference (eligible for the
    /// encoded-data fast paths that skip decoding entirely).
    pub fn as_bare_column(&self) -> Option<&str> {
        match self {
            Expr::Col(name) => Some(name),
            _ => None,
        }
    }

    /// Names of all referenced columns (deduplicated, in first-use order).
    pub fn referenced_columns(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Expr::Col(name) => {
                if !out.contains(&name.as_str()) {
                    out.push(name);
                }
            }
            Expr::Lit(_) => {}
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) => {
                a.collect_columns(out);
                b.collect_columns(out);
            }
            Expr::Neg(a) => a.collect_columns(out),
        }
    }

    /// Resolve column names to indices and compile the vector program.
    pub fn resolve(&self, lookup: &impl Fn(&str) -> Option<usize>) -> Result<ResolvedExpr> {
        let node = self.resolve_node(lookup)?;
        let mut program = Vec::new();
        let mut max_stack = 0usize;
        compile(&node, &mut program, 0, &mut max_stack);
        Ok(ResolvedExpr { root: node, program, max_stack })
    }

    fn resolve_node(&self, lookup: &impl Fn(&str) -> Option<usize>) -> Result<Node> {
        Ok(match self {
            Expr::Col(name) => {
                Node::Col(lookup(name).ok_or_else(|| EngineError::UnknownColumn(name.clone()))?)
            }
            Expr::Lit(v) => Node::Lit(*v),
            Expr::Add(a, b) => {
                Node::Add(Box::new(a.resolve_node(lookup)?), Box::new(b.resolve_node(lookup)?))
            }
            Expr::Sub(a, b) => {
                Node::Sub(Box::new(a.resolve_node(lookup)?), Box::new(b.resolve_node(lookup)?))
            }
            Expr::Mul(a, b) => {
                Node::Mul(Box::new(a.resolve_node(lookup)?), Box::new(b.resolve_node(lookup)?))
            }
            Expr::Neg(a) => Node::Neg(Box::new(a.resolve_node(lookup)?)),
        })
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Node {
    Col(usize),
    Lit(i64),
    Add(Box<Node>, Box<Node>),
    Sub(Box<Node>, Box<Node>),
    Mul(Box<Node>, Box<Node>),
    Neg(Box<Node>),
}

/// A leaf operand fused into a vector instruction, so `price * (100 - disc)`
/// compiles to three single-buffer passes with no temporaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Operand {
    /// The buffer below the top of the stack (pops it).
    Stack,
    /// A decoded column vector.
    Col(usize),
    /// A constant.
    Lit(i64),
    /// The full result of an earlier expression in the same SELECT list
    /// (cross-expression CSE, see [`resolve_many`]).
    Prev(usize),
}

/// One vector instruction of the compiled expression program. All binary
/// ops operate in place on the top-of-stack buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    /// Push a leaf onto the stack.
    Load(Operand),
    /// `top += operand`
    Add(Operand),
    /// `top -= operand`
    Sub(Operand),
    /// `top = operand - top`
    RSub(Operand),
    /// `top *= operand`
    Mul(Operand),
    /// `top = -top`
    Neg,
    /// Push `lhs OP rhs` where both operands are leaves — fuses the load
    /// with the first arithmetic pass.
    Bin2(BinKind, Operand, Operand),
}

/// Binary operator kind for [`Op::Bin2`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BinKind {
    Add,
    Sub,
    Mul,
}

/// An expression with column references resolved to indices and compiled to
/// a small stack program (the interpreter's stand-in for the paper's
/// LLVM-generated functions).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolvedExpr {
    root: Node,
    program: Vec<Op>,
    max_stack: usize,
}

/// Reusable evaluation buffers (one per stack slot).
#[derive(Debug, Default)]
pub struct ExprScratch {
    stack: Vec<Vec<i64>>,
}

/// Compilation context: earlier expressions whose whole trees may be
/// referenced as [`Operand::Prev`].
struct CseCtx<'a> {
    prev: &'a [(usize, &'a Node)],
}

impl CseCtx<'_> {
    const EMPTY: CseCtx<'static> = CseCtx { prev: &[] };

    fn leaf(&self, n: &Node) -> Option<Operand> {
        match n {
            Node::Col(i) => Some(Operand::Col(*i)),
            Node::Lit(v) => Some(Operand::Lit(*v)),
            _ => self.prev.iter().find(|(_, root)| *root == n).map(|(i, _)| Operand::Prev(*i)),
        }
    }
}

fn compile(n: &Node, program: &mut Vec<Op>, depth: usize, max_stack: &mut usize) {
    compile_cse(n, &CseCtx::EMPTY, program, depth, max_stack);
}

fn compile_cse(
    n: &Node,
    ctx: &CseCtx<'_>,
    program: &mut Vec<Op>,
    depth: usize,
    max_stack: &mut usize,
) {
    *max_stack = (*max_stack).max(depth + 1);
    if let Some(operand) = ctx.leaf(n) {
        program.push(Op::Load(operand));
        return;
    }
    match n {
        // PANIC: `ctx.leaf` returned Some for every Col/Lit just above.
        Node::Col(_) | Node::Lit(_) => unreachable!("leaves handled above"),
        Node::Neg(a) => {
            compile_cse(a, ctx, program, depth, max_stack);
            program.push(Op::Neg);
        }
        Node::Add(a, b) | Node::Sub(a, b) | Node::Mul(a, b) => {
            let make = |operand: Operand| match n {
                Node::Add(..) => Op::Add(operand),
                Node::Sub(..) => Op::Sub(operand),
                Node::Mul(..) => Op::Mul(operand),
                // PANIC: the enclosing arm only matches Add/Sub/Mul.
                _ => unreachable!(),
            };
            if let (Some(lhs), Some(rhs)) = (ctx.leaf(a), ctx.leaf(b)) {
                let kind = match n {
                    Node::Add(..) => BinKind::Add,
                    Node::Sub(..) => BinKind::Sub,
                    Node::Mul(..) => BinKind::Mul,
                    // PANIC: the enclosing arm only matches Add/Sub/Mul.
                    _ => unreachable!(),
                };
                program.push(Op::Bin2(kind, lhs, rhs));
            } else if let Some(rhs) = ctx.leaf(b) {
                compile_cse(a, ctx, program, depth, max_stack);
                program.push(make(rhs));
            } else if let Some(lhs) = ctx.leaf(a) {
                compile_cse(b, ctx, program, depth, max_stack);
                // a OP top: addition/multiplication commute; subtraction
                // needs the reversed form.
                program.push(match n {
                    Node::Sub(..) => Op::RSub(lhs),
                    _ => make(lhs),
                });
            } else {
                compile_cse(a, ctx, program, depth, max_stack);
                compile_cse(b, ctx, program, depth + 1, max_stack);
                program.push(make(Operand::Stack));
            }
        }
    }
}

/// Resolve a SELECT list of expressions together, letting each expression
/// reuse the *complete results* of earlier ones (common-subexpression
/// elimination). TPC-H Q1's `charge = disc_price * (1 + tax)` then costs
/// two vector passes instead of re-deriving `disc_price`.
///
/// Evaluation order matters: expression `j` may only reference results
/// `i < j`, which the evaluator guarantees by evaluating in list order.
pub fn resolve_many(
    exprs: &[&Expr],
    lookup: &impl Fn(&str) -> Option<usize>,
) -> Result<Vec<ResolvedExpr>> {
    let nodes: Result<Vec<Node>> = exprs.iter().map(|e| e.resolve_node(lookup)).collect();
    let nodes = nodes?;
    let mut out = Vec::with_capacity(nodes.len());
    for (j, node) in nodes.iter().enumerate() {
        let prev: Vec<(usize, &Node)> = nodes[..j]
            .iter()
            .enumerate()
            // Bare columns/literals are cheaper read directly.
            .filter(|(_, p)| !matches!(p, Node::Col(_) | Node::Lit(_)))
            .collect();
        let ctx = CseCtx { prev: &prev };
        let mut program = Vec::new();
        let mut max_stack = 0usize;
        compile_cse(node, &ctx, &mut program, 0, &mut max_stack);
        out.push(ResolvedExpr { root: node.clone(), program, max_stack });
    }
    Ok(out)
}

impl ResolvedExpr {
    /// Column indices referenced (deduplicated).
    pub fn columns(&self) -> Vec<usize> {
        let mut out = Vec::new();
        fn walk(n: &Node, out: &mut Vec<usize>) {
            match n {
                Node::Col(i) => {
                    if !out.contains(i) {
                        out.push(*i);
                    }
                }
                Node::Lit(_) => {}
                Node::Add(a, b) | Node::Sub(a, b) | Node::Mul(a, b) => {
                    walk(a, out);
                    walk(b, out);
                }
                Node::Neg(a) => walk(a, out),
            }
        }
        walk(&self.root, &mut out);
        out
    }

    /// The bare column index, if the expression is a plain column.
    pub fn as_bare_column(&self) -> Option<usize> {
        match self.root {
            Node::Col(i) => Some(i),
            _ => None,
        }
    }

    /// Vectorized evaluation: `columns(idx)` supplies the decoded vector of
    /// each referenced column (all of length `len`); results land in `out`.
    /// `scratch` buffers are reused across calls (one per stack slot).
    ///
    /// For expressions compiled by [`resolve_many`], use
    /// [`eval_batch_with_prev`](Self::eval_batch_with_prev).
    pub fn eval_batch<'a>(
        &self,
        len: usize,
        columns: &impl Fn(usize) -> &'a [i64],
        out: &mut Vec<i64>,
        scratch: &mut ExprScratch,
    ) {
        static EMPTY: [i64; 0] = [];
        self.eval_batch_with_prev(len, columns, &|_| &EMPTY[..], out, scratch);
    }

    /// [`eval_batch`](Self::eval_batch) for CSE-compiled expressions:
    /// `prev(i)` supplies the already-evaluated result of the `i`-th
    /// expression in the [`resolve_many`] list.
    pub fn eval_batch_with_prev<'a, 'p>(
        &self,
        len: usize,
        columns: &impl Fn(usize) -> &'a [i64],
        prev: &impl Fn(usize) -> &'p [i64],
        out: &mut Vec<i64>,
        scratch: &mut ExprScratch,
    ) {
        while scratch.stack.len() < self.max_stack {
            scratch.stack.push(Vec::new());
        }
        let mut sp = 0usize;
        for op in &self.program {
            match op {
                Op::Load(operand) => {
                    let buf = &mut scratch.stack[sp];
                    buf.clear();
                    match operand {
                        Operand::Col(c) => {
                            let src = columns(*c);
                            assert_eq!(src.len(), len, "column vector length mismatch");
                            buf.extend_from_slice(src);
                        }
                        Operand::Prev(i) => {
                            let src = prev(*i);
                            assert_eq!(src.len(), len, "CSE vector length mismatch");
                            buf.extend_from_slice(src);
                        }
                        Operand::Lit(v) => buf.resize(len, *v),
                        // PANIC: the compiler never emits Load(Stack); see
                        // `compile_cse`, which loads only leaf operands.
                        Operand::Stack => unreachable!("Load never takes Stack"),
                    }
                    sp += 1;
                }
                Op::Neg => {
                    for x in scratch.stack[sp - 1].iter_mut() {
                        *x = -*x;
                    }
                }
                Op::Bin2(kind, lhs, rhs) => {
                    let buf = &mut scratch.stack[sp];
                    buf.resize(len, 0);
                    // The returned borrow only lives for this instruction;
                    // inference shortens 'a/'p to a common local lifetime.
                    let get = |operand: &Operand| match operand {
                        Operand::Col(c) => {
                            let src = columns(*c);
                            assert_eq!(src.len(), len, "column vector length mismatch");
                            RhsVals::Slice(src)
                        }
                        Operand::Prev(i) => {
                            let src = prev(*i);
                            assert_eq!(src.len(), len, "CSE vector length mismatch");
                            RhsVals::Slice(src)
                        }
                        Operand::Lit(v) => RhsVals::Splat(*v),
                        // PANIC: the compiler emits Bin2 only when both
                        // operands are leaves (Col/Prev/Lit).
                        Operand::Stack => unreachable!("Bin2 takes leaves"),
                    };
                    bin2(*kind, get(lhs), get(rhs), buf);
                    sp += 1;
                }
                Op::Add(operand) | Op::Sub(operand) | Op::Mul(operand) | Op::RSub(operand) => {
                    match operand {
                        Operand::Stack => {
                            let (a, b) = scratch.stack.split_at_mut(sp - 1);
                            sp -= 1;
                            apply(op, a[sp - 1].as_mut_slice(), RhsVals::Slice(&b[0]));
                        }
                        Operand::Col(c) => {
                            let src = columns(*c);
                            assert_eq!(src.len(), len, "column vector length mismatch");
                            apply(op, scratch.stack[sp - 1].as_mut_slice(), RhsVals::Slice(src));
                        }
                        Operand::Prev(i) => {
                            let src = prev(*i);
                            assert_eq!(src.len(), len, "CSE vector length mismatch");
                            apply(op, scratch.stack[sp - 1].as_mut_slice(), RhsVals::Slice(src));
                        }
                        Operand::Lit(v) => {
                            apply(op, scratch.stack[sp - 1].as_mut_slice(), RhsVals::Splat(*v));
                        }
                    }
                }
            }
        }
        debug_assert_eq!(sp, 1, "program leaves one value");
        // Hand the result buffer over without copying; the old `out`
        // allocation becomes the next call's stack slot.
        std::mem::swap(out, &mut scratch.stack[0]);
    }

    /// Single-row evaluation (mutable-region rows, oracle executor).
    pub fn eval_row(&self, value_of: &impl Fn(usize) -> i64) -> i64 {
        fn walk(n: &Node, value_of: &impl Fn(usize) -> i64) -> i64 {
            match n {
                Node::Col(i) => value_of(*i),
                Node::Lit(v) => *v,
                Node::Add(a, b) => walk(a, value_of) + walk(b, value_of),
                Node::Sub(a, b) => walk(a, value_of) - walk(b, value_of),
                Node::Mul(a, b) => walk(a, value_of) * walk(b, value_of),
                Node::Neg(a) => -walk(a, value_of),
            }
        }
        walk(&self.root, value_of)
    }

    /// Interval analysis: the (min, max) the expression can take given per-
    /// column (min, max) metadata. Used for overflow proofs and width
    /// selection. Computed in `i128` so the analysis itself cannot wrap.
    pub fn value_range(&self, meta: &impl Fn(usize) -> (i64, i64)) -> (i128, i128) {
        fn walk(n: &Node, meta: &impl Fn(usize) -> (i64, i64)) -> (i128, i128) {
            match n {
                Node::Col(i) => {
                    let (lo, hi) = meta(*i);
                    (lo as i128, hi as i128)
                }
                Node::Lit(v) => (*v as i128, *v as i128),
                Node::Add(a, b) => {
                    let (al, ah) = walk(a, meta);
                    let (bl, bh) = walk(b, meta);
                    (al + bl, ah + bh)
                }
                Node::Sub(a, b) => {
                    let (al, ah) = walk(a, meta);
                    let (bl, bh) = walk(b, meta);
                    (al - bh, ah - bl)
                }
                Node::Mul(a, b) => {
                    let (al, ah) = walk(a, meta);
                    let (bl, bh) = walk(b, meta);
                    let products = [al * bl, al * bh, ah * bl, ah * bh];
                    (
                        products.iter().copied().min().unwrap(), // PANIC: 4-element array
                        products.iter().copied().max().unwrap(), // PANIC: 4-element array
                    )
                }
                Node::Neg(a) => {
                    let (lo, hi) = walk(a, meta);
                    (-hi, -lo)
                }
            }
        }
        walk(&self.root, meta)
    }
}

/// Right-hand operand of an in-place vector op.
enum RhsVals<'a> {
    Slice(&'a [i64]),
    Splat(i64),
}

/// `out[i] = lhs[i] OP rhs[i]` with either side possibly a constant.
fn bin2(kind: BinKind, lhs: RhsVals<'_>, rhs: RhsVals<'_>, out: &mut [i64]) {
    let f = |a: i64, b: i64| match kind {
        BinKind::Add => a + b,
        BinKind::Sub => a - b,
        BinKind::Mul => a * b,
    };
    match (lhs, rhs) {
        (RhsVals::Slice(a), RhsVals::Slice(b)) => {
            for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
                *o = f(x, y);
            }
        }
        (RhsVals::Slice(a), RhsVals::Splat(y)) => {
            for (o, &x) in out.iter_mut().zip(a) {
                *o = f(x, y);
            }
        }
        (RhsVals::Splat(x), RhsVals::Slice(b)) => {
            for (o, &y) in out.iter_mut().zip(b) {
                *o = f(x, y);
            }
        }
        (RhsVals::Splat(x), RhsVals::Splat(y)) => out.fill(f(x, y)),
    }
}

fn apply(op: &Op, top: &mut [i64], rhs: RhsVals<'_>) {
    macro_rules! run {
        ($f:expr) => {
            match rhs {
                RhsVals::Slice(r) => {
                    for (t, &r) in top.iter_mut().zip(r) {
                        #[allow(clippy::redundant_closure_call)]
                        {
                            *t = ($f)(*t, r);
                        }
                    }
                }
                RhsVals::Splat(r) => {
                    for t in top.iter_mut() {
                        #[allow(clippy::redundant_closure_call)]
                        {
                            *t = ($f)(*t, r);
                        }
                    }
                }
            }
        };
    }
    match op {
        Op::Add(_) => run!(|t: i64, r: i64| t + r),
        Op::Sub(_) => run!(|t: i64, r: i64| t - r),
        Op::RSub(_) => run!(|t: i64, r: i64| r - t),
        Op::Mul(_) => run!(|t: i64, r: i64| t * r),
        Op::Load(_) | Op::Neg | Op::Bin2(..) => {
            // PANIC: the interpreter loop dispatches those opcodes before
            // reaching this fused-RHS helper.
            unreachable!("handled by the interpreter loop")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lookup(name: &str) -> Option<usize> {
        ["a", "b", "c"].iter().position(|&n| n == name)
    }

    #[test]
    fn build_and_resolve() {
        // price * (100 - disc): the TPC-H Q1 shape on scaled integers.
        let e = Expr::col("a").mul(Expr::lit(100).sub(Expr::col("b")));
        assert_eq!(e.referenced_columns(), vec!["a", "b"]);
        assert!(e.as_bare_column().is_none());
        assert_eq!(Expr::col("c").as_bare_column(), Some("c"));
        let r = e.resolve(&lookup).unwrap();
        assert_eq!(r.columns(), vec![0, 1]);
    }

    #[test]
    fn unknown_column_errors() {
        let e = Expr::col("nope");
        assert_eq!(e.resolve(&lookup), Err(EngineError::UnknownColumn("nope".into())));
    }

    #[test]
    fn batch_eval_matches_row_eval() {
        let e = Expr::col("a").mul(Expr::lit(100).sub(Expr::col("b"))).add(Expr::col("c").neg());
        let r = e.resolve(&lookup).unwrap();
        let a: Vec<i64> = (0..100).map(|i| i * 3).collect();
        let b: Vec<i64> = (0..100).map(|i| i % 11).collect();
        let c: Vec<i64> = (0..100).map(|i| 50 - i).collect();
        let cols = [a.clone(), b.clone(), c.clone()];
        let mut out = Vec::new();
        r.eval_batch(100, &|i| cols[i].as_slice(), &mut out, &mut ExprScratch::default());
        for i in 0..100 {
            let expected = r.eval_row(&|col| cols[col][i]);
            assert_eq!(out[i], expected, "i={i}");
            assert_eq!(expected, a[i] * (100 - b[i]) - c[i]);
        }
    }

    #[test]
    fn cse_reuses_prior_expression_results() {
        // e1 = a * (100 - b); e2 = e1 * (100 + c): e2 must reference e1's
        // result rather than recompute it.
        let e1 = Expr::col("a").mul(Expr::lit(100).sub(Expr::col("b")));
        let e2 = e1.clone().mul(Expr::lit(100).add(Expr::col("c")));
        let resolved = resolve_many(&[&e1, &e2], &lookup).unwrap();
        assert!(
            resolved[1]
                .program
                .iter()
                .any(|op| matches!(op, Op::Mul(Operand::Prev(0)) | Op::Load(Operand::Prev(0)))),
            "program: {:?}",
            resolved[1].program
        );
        // And evaluation with prev gives the same values as row-eval.
        let a: Vec<i64> = (0..200).map(|i| i * 3).collect();
        let b: Vec<i64> = (0..200).map(|i| i % 11).collect();
        let c: Vec<i64> = (0..200).map(|i| i % 7).collect();
        let cols = [a, b, c];
        let mut scratch = ExprScratch::default();
        let mut out1 = Vec::new();
        resolved[0].eval_batch(200, &|i| cols[i].as_slice(), &mut out1, &mut scratch);
        let mut out2 = Vec::new();
        resolved[1].eval_batch_with_prev(
            200,
            &|i| cols[i].as_slice(),
            &|p| {
                assert_eq!(p, 0);
                out1.as_slice()
            },
            &mut out2,
            &mut scratch,
        );
        for i in 0..200 {
            let expected = resolved[1].eval_row(&|col| cols[col][i]);
            assert_eq!(out2[i], expected, "i={i}");
        }
    }

    #[test]
    fn cse_ignores_bare_columns() {
        // A bare column expression must not become a Prev reference (it is
        // cheaper to read directly, and may be a packed input with no
        // evaluated buffer).
        let e1 = Expr::col("a");
        let e2 = Expr::col("a").mul(Expr::col("b"));
        let resolved = resolve_many(&[&e1, &e2], &lookup).unwrap();
        assert!(
            !resolved[1].program.iter().any(|op| matches!(op, Op::Load(Operand::Prev(_)))),
            "program: {:?}",
            resolved[1].program
        );
    }

    #[test]
    fn interval_analysis() {
        let meta = |i: usize| [(0i64, 10i64), (-5, 5), (100, 200)][i];
        let e = Expr::col("a").mul(Expr::col("b")).resolve(&lookup).unwrap();
        assert_eq!(e.value_range(&meta), (-50, 50));
        let e = Expr::col("c").sub(Expr::col("a")).resolve(&lookup).unwrap();
        assert_eq!(e.value_range(&meta), (90, 200));
        let e = Expr::col("b").neg().resolve(&lookup).unwrap();
        assert_eq!(e.value_range(&meta), (-5, 5));
        let e = Expr::lit(7).resolve(&lookup).unwrap();
        assert_eq!(e.value_range(&meta), (7, 7));
    }

    #[test]
    fn interval_handles_extremes_without_wrap() {
        let meta = |_: usize| (i64::MIN, i64::MAX);
        let e = Expr::col("a").mul(Expr::col("b")).resolve(&lookup).unwrap();
        let (lo, hi) = e.value_range(&meta);
        assert!(lo < i64::MIN as i128 && hi > i64::MAX as i128);
    }

    #[test]
    fn empty_batch() {
        let e = Expr::col("a").resolve(&lookup).unwrap();
        let mut out = vec![1, 2, 3];
        let empty: Vec<i64> = vec![];
        e.eval_batch(0, &|_| empty.as_slice(), &mut out, &mut ExprScratch::default());
        assert!(out.is_empty());
    }
}
