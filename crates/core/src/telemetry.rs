//! Process-wide engine telemetry (DESIGN.md §14).
//!
//! PR 3's profiler observes one query and dies with it. This module is the
//! layer above: a process-lifetime [`EngineTelemetry`] handle that every
//! query publishes into, backed by the dependency-free
//! [`bipie_metrics::Registry`] (lock-free sharded counters, gauges, log2
//! histograms) plus a bounded cross-query [`DecisionLog`] that retains the
//! chooser's `(inputs, strategy, cycles, rows)` tuples for later cost-model
//! mining (ROADMAP item 3).
//!
//! ## The seam
//!
//! Instrumentation flows through exactly one choke point: the engine's hot
//! paths (`scan`, `pool`, `governor`) already account their work into
//! [`ExecStats`] and the per-worker tracer rings, and
//! [`execute`](crate::query::execute) hands those finished artifacts to
//! [`EngineTelemetry::publish_query`] once per query. No scan-loop code
//! touches a registry handle, so:
//!
//! * the hot path costs nothing beyond the accounting it already did;
//! * registry mutation is auditable — the xtask `trace-hygiene` pass pins
//!   `Registry::` / `Counter::` / … mutation to this module and the metrics
//!   crate itself;
//! * per-strategy registry counters are *exactly* the sum of published
//!   queries' `ExecStats` tallies, by construction.
//!
//! ## Compiling it out
//!
//! The `no_metrics` feature is the PR-1-era `no_profiler` pattern applied
//! here: [`EngineTelemetry::on`] becomes a constant `false`, publish calls
//! dead-code-eliminate, and the bench overhead gate
//! (`exp_telemetry --gate`) holds the metrics-off build within 2% of
//! baseline. At runtime, [`EngineTelemetry::set_enabled`] is the reversible
//! switch the overhead experiment toggles between interleaved runs.
//!
//! ## Metric naming convention
//!
//! Every metric is `bipie_<noun>[_total|_us|_cycles]`: `_total` for
//! monotonic counters, a unit suffix for histograms (`_us` microseconds,
//! `_cycles` serialized-TSC cycles). Strategy breakdowns use one static
//! label `strategy` with snake_case values so identity stays allocation-free
//! (label sets are `&'static` throughout).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Duration;

use bipie_metrics::{Counter, Gauge, Histogram, Labels, Registry};
use std::sync::Arc;

use crate::error::EngineError;
use crate::stats::ExecStats;
use crate::strategy::{AggStrategy, SelectionStrategy};
use crate::trace::{Phase, QueryProfile, TraceEvent};

/// Decisions the [`DecisionLog`] retains before overwriting the oldest.
/// 4096 records ≈ a few hundred queries of batch decisions — enough recent
/// history for regret analysis without unbounded growth.
pub const DECISION_LOG_CAPACITY: usize = 4096;

/// Static `strategy` label sets, indexed by [`SelectionStrategy`].
const SEL_LABELS: [Labels; 4] = [
    &[("strategy", "gather")],
    &[("strategy", "compact")],
    &[("strategy", "special_group")],
    &[("strategy", "run_span")],
];

/// Static `strategy` label sets, indexed by [`AggStrategy`].
const AGG_LABELS: [Labels; 5] = [
    &[("strategy", "scalar")],
    &[("strategy", "sort_based")],
    &[("strategy", "in_register")],
    &[("strategy", "multi_aggregate")],
    &[("strategy", "run_wise")],
];

/// Static `cause` label sets for governor trips.
const TRIP_LABELS: [Labels; 3] =
    [&[("cause", "cancelled")], &[("cause", "deadline")], &[("cause", "memory")]];

/// Static `reason` label sets for engine admission sheds, indexed by
/// [`ShedReason`].
const SHED_LABELS: [Labels; 4] = [
    &[("reason", "queue_full")],
    &[("reason", "aggregate_memory")],
    &[("reason", "queue_timeout")],
    &[("reason", "shutdown")],
];

/// Why the engine refused a query, as a telemetry label index. The engine
/// maps its typed admission errors here when publishing shed counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// `EngineError::AdmissionRejected { reason: QueueFull }`.
    QueueFull = 0,
    /// `EngineError::AdmissionRejected { reason: AggregateMemory }`.
    AggregateMemory = 1,
    /// `EngineError::AdmissionTimeout`.
    QueueTimeout = 2,
    /// `EngineError::EngineShutdown`.
    Shutdown = 3,
}

/// Non-poisoning lock acquisition: a panicked publisher must not take the
/// decision log down with it — telemetry records plain-old-data, so the
/// guarded state is valid at every await-free step.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // LOCK: generic acquisition helper — call sites document guard scope.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One retained strategy decision: the chooser's inputs, its pick, and the
/// measured cost of acting on it.
///
/// `cycles`/`rows` are paired from the profile's span ring (the
/// `Selection` span covering the decided batch, or the segment's
/// `Aggregation`/`WideGroup` span total), and are 0 when the query ran
/// below [`ProfileLevel::Spans`](crate::trace::ProfileLevel::Spans).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DecisionRecord {
    /// A per-batch selection-strategy decision.
    Selection {
        /// Table segment ordinal.
        segment: u32,
        /// Morsel ordinal ([`NO_ID`](crate::trace::NO_ID) for serial scans).
        morsel: u32,
        /// Dominant packed input bit width the crossover used.
        bits: u8,
        /// Selectivity measured for this batch (the chooser input).
        observed_selectivity: f64,
        /// The strategy picked.
        chosen: SelectionStrategy,
        /// True when `forced_selection` overrode the chooser.
        forced: bool,
        /// Cycles the decided batch's selection span consumed (0 if the
        /// span was not captured).
        cycles: u64,
        /// Rows the decided batch covered.
        rows: u64,
    },
    /// A per-segment (per worker-executor) aggregation-strategy decision.
    Agg {
        /// Table segment ordinal.
        segment: u32,
        /// Worker that planned the executor.
        worker: u32,
        /// Group count including the special-group slot.
        num_groups_effective: u32,
        /// SUM aggregate count.
        num_sums: u32,
        /// MIN/MAX aggregate count.
        num_minmax: u32,
        /// Selectivity estimate the chooser saw.
        est_selectivity: f64,
        /// Whether every sum input was packed-narrow.
        all_packed_narrow: bool,
        /// Whether a multi-aggregate row layout existed.
        multi_layout_fits: bool,
        /// The strategy picked.
        chosen: AggStrategy,
        /// True when `forced_agg` overrode the chooser.
        forced: bool,
        /// Total aggregation cycles this worker spent on the segment.
        cycles: u64,
        /// Total rows this worker aggregated in the segment.
        rows: u64,
    },
}

impl DecisionRecord {
    /// Render one record as a JSON object (stable field order).
    fn to_json(self) -> String {
        match self {
            DecisionRecord::Selection {
                segment,
                morsel,
                bits,
                observed_selectivity,
                chosen,
                forced,
                cycles,
                rows,
            } => format!(
                "{{\"kind\": \"selection\", \"segment\": {segment}, \"morsel\": {morsel}, \
                 \"bits\": {bits}, \"observed_selectivity\": {observed_selectivity:.4}, \
                 \"chosen\": \"{}\", \"forced\": {forced}, \"cycles\": {cycles}, \
                 \"rows\": {rows}}}",
                chosen.label()
            ),
            DecisionRecord::Agg {
                segment,
                worker,
                num_groups_effective,
                num_sums,
                num_minmax,
                est_selectivity,
                all_packed_narrow,
                multi_layout_fits,
                chosen,
                forced,
                cycles,
                rows,
            } => format!(
                "{{\"kind\": \"agg\", \"segment\": {segment}, \"worker\": {worker}, \
                 \"num_groups_effective\": {num_groups_effective}, \"num_sums\": {num_sums}, \
                 \"num_minmax\": {num_minmax}, \"est_selectivity\": {est_selectivity:.4}, \
                 \"all_packed_narrow\": {all_packed_narrow}, \"multi_layout_fits\": \
                 {multi_layout_fits}, \"chosen\": \"{}\", \"forced\": {forced}, \
                 \"cycles\": {cycles}, \"rows\": {rows}}}",
                chosen.label()
            ),
        }
    }
}

/// Per-cell pick histogram over the retained decisions — the summary shape
/// ROADMAP item 3's measured cost model mines for chooser regret.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DecisionSummary {
    /// Retained selection decisions per strategy (`SelectionStrategy` index).
    pub selection_picks: [u64; 4],
    /// Retained aggregation decisions per strategy (`AggStrategy` index).
    pub agg_picks: [u64; 5],
    /// Selection matrix cells: `(bits, selectivity decile 0..=9)` → picks
    /// per strategy. The cell axes mirror the paper's Figure 8 crossover
    /// matrix (bit width × selectivity).
    pub selection_cells: BTreeMap<(u8, u8), [u64; 4]>,
    /// Aggregation cells: `log2(num_groups_effective)` → picks per
    /// strategy (group count is the dominant axis of Figures 9–10).
    pub agg_cells: BTreeMap<u8, [u64; 5]>,
}

/// Ring state behind the [`DecisionLog`] lock.
#[derive(Debug, Default)]
struct LogInner {
    /// Retained records, oldest first once at capacity.
    ring: std::collections::VecDeque<DecisionRecord>,
    /// Records overwritten after the ring filled.
    dropped: u64,
}

/// A bounded cross-query ring of strategy decisions with drop-counting.
///
/// Unlike the tracer's keep-*first* overflow (which preserves a query's
/// opening picture), the decision log keeps the *most recent* records —
/// for mining chooser behavior, fresh history beats the process's first
/// few queries.
///
/// /// Invariant: `ring.len() <= DECISION_LOG_CAPACITY` at all times;
/// `dropped` counts exactly the records evicted to keep it so.
#[derive(Debug, Default)]
pub struct DecisionLog {
    // LOCK: leaf lock; guards the ring for push/snapshot only — no other
    // lock is ever taken while it is held.
    inner: Mutex<LogInner>,
}

impl DecisionLog {
    /// New empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a record, evicting the oldest when full.
    pub fn push(&self, record: DecisionRecord) {
        // LOCK: push fast path; guard dies before return.
        let mut inner = lock(&self.inner);
        if inner.ring.len() == DECISION_LOG_CAPACITY {
            inner.ring.pop_front();
            inner.dropped += 1;
        }
        inner.ring.push_back(record);
    }

    /// Records currently retained.
    pub fn len(&self) -> usize {
        // LOCK: read-only peek; temp guard dies at `;`.
        lock(&self.inner).ring.len()
    }

    /// True when no records are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records evicted since process start.
    pub fn dropped(&self) -> u64 {
        // LOCK: read-only peek; temp guard dies at `;`.
        lock(&self.inner).dropped
    }

    /// Clone out the retained records, oldest first.
    pub fn snapshot(&self) -> Vec<DecisionRecord> {
        // LOCK: exposition clone; temp guard dies at `;`.
        lock(&self.inner).ring.iter().copied().collect()
    }

    /// Discard all retained records and reset the drop counter.
    pub fn clear(&self) {
        // LOCK: reset; guard dies before return.
        let mut inner = lock(&self.inner);
        inner.ring.clear();
        inner.dropped = 0;
    }

    /// Dump the retained records as a JSON document.
    pub fn to_json(&self) -> String {
        let records = self.snapshot();
        let dropped = self.dropped();
        let body: Vec<String> = records.iter().copied().map(DecisionRecord::to_json).collect();
        format!(
            "{{\"capacity\": {DECISION_LOG_CAPACITY}, \"dropped\": {dropped}, \
             \"decisions\": [{}]}}",
            body.join(", ")
        )
    }

    /// Fold the retained records into the per-cell pick histogram.
    pub fn summary(&self) -> DecisionSummary {
        let mut s = DecisionSummary::default();
        for r in self.snapshot() {
            match r {
                DecisionRecord::Selection { bits, observed_selectivity, chosen, .. } => {
                    s.selection_picks[chosen as usize] += 1;
                    let decile = ((observed_selectivity * 10.0) as i64).clamp(0, 9) as u8;
                    s.selection_cells.entry((bits, decile)).or_default()[chosen as usize] += 1;
                }
                DecisionRecord::Agg { num_groups_effective, chosen, .. } => {
                    s.agg_picks[chosen as usize] += 1;
                    let log2_groups = (64 - u64::from(num_groups_effective).leading_zeros()) as u8;
                    s.agg_cells.entry(log2_groups).or_default()[chosen as usize] += 1;
                }
            }
        }
        s
    }
}

/// The process-wide telemetry handle: a metrics [`Registry`], the engine's
/// pre-registered instruments, and the cross-query [`DecisionLog`].
///
/// Obtain the process singleton with [`telemetry`]; construct fresh
/// instances (`EngineTelemetry::new`) in tests to observe deltas without
/// cross-test pollution.
///
/// /// Invariant: `enabled` only gates *publication* — instruments are
/// registered unconditionally at construction so metric identity is stable
/// regardless of when the switch flips, and a disabled (or `no_metrics`)
/// process observes all counters at exactly zero.
pub struct EngineTelemetry {
    registry: Registry,
    /// Runtime publish switch (default on); `no_metrics` wins over it.
    enabled: AtomicBool,
    decision_log: DecisionLog,
    queries: Arc<Counter>,
    query_errors: Arc<Counter>,
    governor_trips: [Arc<Counter>; 3],
    query_latency_us: Arc<Histogram>,
    rows_scanned: Arc<Counter>,
    bytes_scanned: Arc<Counter>,
    morsel_claims: Arc<Counter>,
    morsel_steals: Arc<Counter>,
    governor_checks: Arc<Counter>,
    pool_reuses: Arc<Counter>,
    selection_picks: [Arc<Counter>; 4],
    agg_picks: [Arc<Counter>; 5],
    selection_batch_cycles: [Arc<Histogram>; 4],
    agg_segment_cycles: [Arc<Histogram>; 5],
    engine_active_queries: Arc<Gauge>,
    engine_queued_queries: Arc<Gauge>,
    engine_admissions: Arc<Counter>,
    engine_sheds: [Arc<Counter>; 4],
    sched_jobs_dispatched: Arc<Gauge>,
    sched_query_switches: Arc<Gauge>,
}

impl Default for EngineTelemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl EngineTelemetry {
    /// Build a handle with every engine instrument registered.
    pub fn new() -> Self {
        let registry = Registry::new();
        let counter = |name, help| registry.counter(name, help, &[]);
        let queries = counter("bipie_queries_total", "Queries executed to completion.");
        let query_errors = counter("bipie_query_errors_total", "Queries that returned an error.");
        let governor_trips = TRIP_LABELS.map(|labels| {
            registry.counter(
                "bipie_governor_trips_total",
                "Queries stopped by a resource governor limit, by cause.",
                labels,
            )
        });
        let query_latency_us = registry.histogram(
            "bipie_query_latency_us",
            "End-to-end query wall latency in microseconds.",
            &[],
        );
        let rows_scanned =
            counter("bipie_rows_scanned_total", "Live rows of scanned encoded segments.");
        let bytes_scanned =
            counter("bipie_bytes_scanned_total", "Encoded bytes of scanned segments.");
        let morsel_claims =
            counter("bipie_morsel_claims_total", "Morsels claimed by parallel scan workers.");
        let morsel_steals = counter(
            "bipie_morsel_steals_total",
            "Morsels claimed outside the worker's home partition.",
        );
        let governor_checks =
            counter("bipie_governor_checks_total", "Cooperative governor limit checks.");
        let pool_reuses = counter(
            "bipie_pool_reuses_total",
            "Fork-join regions served entirely by already-running pool workers.",
        );
        let selection_picks = SEL_LABELS.map(|labels| {
            registry.counter(
                "bipie_selection_picks_total",
                "Per-batch selection-strategy decisions, by strategy.",
                labels,
            )
        });
        let agg_picks = AGG_LABELS.map(|labels| {
            registry.counter(
                "bipie_agg_picks_total",
                "Per-segment aggregation-strategy decisions, by strategy.",
                labels,
            )
        });
        let selection_batch_cycles = SEL_LABELS.map(|labels| {
            registry.histogram(
                "bipie_selection_batch_cycles",
                "Selection span cycles per batch, by chosen strategy.",
                labels,
            )
        });
        let agg_segment_cycles = AGG_LABELS.map(|labels| {
            registry.histogram(
                "bipie_agg_segment_cycles",
                "Aggregation span cycles per batch, by chosen strategy.",
                labels,
            )
        });
        let engine_active_queries = registry.gauge(
            "bipie_engine_active_queries",
            "Queries currently admitted and executing on the engine.",
            &[],
        );
        let engine_queued_queries = registry.gauge(
            "bipie_engine_queued_queries",
            "Queries currently waiting in the engine's admission queue.",
            &[],
        );
        let engine_admissions =
            counter("bipie_engine_admissions_total", "Queries admitted by the engine.");
        let engine_sheds = SHED_LABELS.map(|labels| {
            registry.counter(
                "bipie_engine_sheds_total",
                "Queries refused by engine admission control, by reason.",
                labels,
            )
        });
        let sched_jobs_dispatched = registry.gauge(
            "bipie_sched_jobs_dispatched",
            "Cumulative pool jobs dispatched by the shared scheduler \
             (mirrored from the pool at publish time).",
            &[],
        );
        let sched_query_switches = registry.gauge(
            "bipie_sched_query_switches",
            "Cumulative cross-query dispatch switches in the shared \
             scheduler (mirrored from the pool at publish time).",
            &[],
        );
        Self {
            registry,
            // ORDERING: plain initialization; no concurrent observers yet.
            enabled: AtomicBool::new(true),
            decision_log: DecisionLog::new(),
            queries,
            query_errors,
            governor_trips,
            query_latency_us,
            rows_scanned,
            bytes_scanned,
            morsel_claims,
            morsel_steals,
            governor_checks,
            pool_reuses,
            selection_picks,
            agg_picks,
            selection_batch_cycles,
            agg_segment_cycles,
            engine_active_queries,
            engine_queued_queries,
            engine_admissions,
            engine_sheds,
            sched_jobs_dispatched,
            sched_query_switches,
        }
    }

    /// The backing registry, for exposition
    /// ([`Registry::render_prometheus`] / [`Registry::render_json`]).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The cross-query decision log.
    pub fn decision_log(&self) -> &DecisionLog {
        &self.decision_log
    }

    /// Flip the runtime publish switch. A `no_metrics` build ignores this —
    /// [`EngineTelemetry::on`] stays `false`.
    pub fn set_enabled(&self, enabled: bool) {
        // ORDERING: Relaxed — the switch is advisory; publishers observing
        // a stale value for one query is acceptable and unsynchronized.
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether publish calls record anything.
    pub fn on(&self) -> bool {
        #[cfg(feature = "no_metrics")]
        {
            false
        }
        #[cfg(not(feature = "no_metrics"))]
        {
            // ORDERING: Relaxed — see `set_enabled`; no data is published
            // under this flag that needs to synchronize with the store.
            self.enabled.load(Ordering::Relaxed)
        }
    }

    /// Publish one completed query: fleet counters from its [`ExecStats`],
    /// latency into the histogram, and (when the profile captured spans)
    /// per-strategy span latencies plus [`DecisionLog`] records.
    ///
    /// Per-strategy pick counters add `stats.selection_batches` /
    /// `stats.agg_segments` verbatim, so registry totals are exactly the
    /// sum over published queries of their stats — the acceptance
    /// invariant the `telemetry` integration test pins.
    pub fn publish_query(&self, stats: &ExecStats, profile: &QueryProfile, wall: Duration) {
        if !self.on() {
            return;
        }
        self.queries.inc();
        self.query_latency_us.observe(u64::try_from(wall.as_micros()).unwrap_or(u64::MAX));
        self.rows_scanned.add(stats.rows_scanned as u64);
        self.bytes_scanned.add(stats.bytes_scanned as u64);
        self.morsel_claims.add(stats.morsels_scanned as u64);
        self.morsel_steals.add(stats.morsel_steals as u64);
        self.governor_checks.add(stats.governor_checks as u64);
        self.pool_reuses.add(stats.pool_reuses as u64);
        for (i, picks) in stats.selection_batches.iter().enumerate() {
            self.selection_picks[i].add(*picks as u64);
        }
        for (i, picks) in stats.agg_segments.iter().enumerate() {
            self.agg_picks[i].add(*picks as u64);
        }
        self.ingest_profile(profile);
    }

    /// Publish one failed query: the error counter, plus a governor-trip
    /// cause counter when the governor stopped it.
    pub fn publish_error(&self, err: &EngineError) {
        if !self.on() {
            return;
        }
        self.query_errors.inc();
        match err {
            EngineError::Cancelled => self.governor_trips[0].inc(),
            EngineError::DeadlineExceeded => self.governor_trips[1].inc(),
            EngineError::MemoryBudgetExceeded { .. } => self.governor_trips[2].inc(),
            _ => {}
        }
    }

    /// Publish an engine admission-state transition: the live/queued query
    /// gauges, plus the admission counter when `admitted` (a queue-depth
    /// update alone leaves the counter untouched).
    pub fn publish_engine_admission(&self, active: usize, queued: usize, admitted: bool) {
        if !self.on() {
            return;
        }
        self.engine_active_queries.set(active as i64);
        self.engine_queued_queries.set(queued as i64);
        if admitted {
            self.engine_admissions.inc();
        }
    }

    /// Publish one shed decision by the engine's admission controller.
    pub fn publish_engine_shed(&self, reason: ShedReason) {
        if !self.on() {
            return;
        }
        self.engine_sheds[reason as usize].inc();
    }

    /// Mirror the pool's cumulative shared-scheduler counters into the
    /// registry. Called by the engine when a query finishes — gauges carry
    /// monotone totals, so "latest publish wins" is exact on quiesce.
    pub fn publish_sched_stats(&self, stats: crate::pool::SchedStats) {
        if !self.on() {
            return;
        }
        self.sched_jobs_dispatched.set(stats.jobs_dispatched.min(i64::MAX as u64) as i64);
        self.sched_query_switches.set(stats.query_switches.min(i64::MAX as u64) as i64);
    }

    /// Walk a spans-level profile: per-strategy span-latency histograms and
    /// decision-log records with paired costs.
    ///
    /// Pairing relies on the tracer's recording order (worker-major event
    /// stream, chronological per worker): a batch's `Selection` span is
    /// recorded *before* its `SelectionDecision`, so the most recent
    /// selection span with matching `(segment, morsel)` is the decided
    /// batch's cost. `AggDecision` is recorded at executor creation, before
    /// any aggregation spans, so its cost is the `(worker, segment)` total
    /// of `Aggregation` + `WideGroup` span cycles collected in a first
    /// pass.
    fn ingest_profile(&self, profile: &QueryProfile) {
        // Pass 1: per-(worker, segment) aggregation span totals.
        let mut agg_totals: BTreeMap<(u32, u32), (u64, u64)> = BTreeMap::new();
        for e in &profile.events {
            if let TraceEvent::Span { phase, worker, loc, rows, cycles, .. } = e {
                match phase {
                    Phase::Aggregation | Phase::WideGroup => {
                        let slot = agg_totals.entry((*worker, loc.segment)).or_default();
                        slot.0 += cycles;
                        slot.1 += rows;
                        if let Some(a) = loc.agg {
                            self.agg_segment_cycles[a as usize].observe(*cycles);
                        }
                    }
                    Phase::Selection => {
                        if let Some(s) = loc.selection {
                            self.selection_batch_cycles[s as usize].observe(*cycles);
                        }
                    }
                    _ => {}
                }
            }
        }
        // Pass 2: decision records, costs attached.
        let mut last_selection: Option<(u32, u32, u64, u64)> = None;
        for e in &profile.events {
            match e {
                TraceEvent::Span { phase: Phase::Selection, loc, rows, cycles, .. } => {
                    last_selection = Some((loc.segment, loc.morsel, *cycles, *rows));
                }
                TraceEvent::SelectionDecision {
                    segment,
                    morsel,
                    rows,
                    bits,
                    observed_selectivity,
                    chosen,
                    forced,
                    ..
                } => {
                    let cycles = match last_selection {
                        Some((seg, mor, c, _)) if seg == *segment && mor == *morsel => c,
                        _ => 0,
                    };
                    self.decision_log.push(DecisionRecord::Selection {
                        segment: *segment,
                        morsel: *morsel,
                        bits: *bits,
                        observed_selectivity: *observed_selectivity,
                        chosen: *chosen,
                        forced: *forced,
                        cycles,
                        rows: u64::from(*rows),
                    });
                }
                TraceEvent::AggDecision {
                    segment,
                    worker,
                    num_groups_effective,
                    num_sums,
                    num_minmax,
                    est_selectivity,
                    all_packed_narrow,
                    multi_layout_fits,
                    chosen,
                    forced,
                    ..
                } => {
                    let (cycles, rows) =
                        agg_totals.get(&(*worker, *segment)).copied().unwrap_or((0, 0));
                    self.decision_log.push(DecisionRecord::Agg {
                        segment: *segment,
                        worker: *worker,
                        num_groups_effective: *num_groups_effective,
                        num_sums: *num_sums,
                        num_minmax: *num_minmax,
                        est_selectivity: *est_selectivity,
                        all_packed_narrow: *all_packed_narrow,
                        multi_layout_fits: *multi_layout_fits,
                        chosen: *chosen,
                        forced: *forced,
                        cycles,
                        rows,
                    });
                }
                _ => {}
            }
        }
    }
}

/// True when the `no_metrics` feature compiled telemetry publication out
/// (the overhead benchmark uses this to refuse to measure the wrong build).
pub fn metrics_compiled_out() -> bool {
    cfg!(feature = "no_metrics")
}

/// The process-wide telemetry singleton every query publishes into.
pub fn telemetry() -> &'static EngineTelemetry {
    static TELEMETRY: OnceLock<EngineTelemetry> = OnceLock::new();
    TELEMETRY.get_or_init(EngineTelemetry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sel_record(sel: f64, chosen: SelectionStrategy) -> DecisionRecord {
        DecisionRecord::Selection {
            segment: 0,
            morsel: 0,
            bits: 8,
            observed_selectivity: sel,
            chosen,
            forced: false,
            cycles: 100,
            rows: 1024,
        }
    }

    #[test]
    fn decision_log_bounded_with_drop_counting() {
        let log = DecisionLog::new();
        for i in 0..(DECISION_LOG_CAPACITY + 10) {
            log.push(sel_record(i as f64 / 10_000.0, SelectionStrategy::Gather));
        }
        assert_eq!(log.len(), DECISION_LOG_CAPACITY);
        assert_eq!(log.dropped(), 10);
        // Keep-last: the oldest 10 records were evicted.
        match log.snapshot()[0] {
            DecisionRecord::Selection { observed_selectivity, .. } => {
                assert!((observed_selectivity - 10.0 / 10_000.0).abs() < 1e-12);
            }
            _ => panic!("expected selection record"), // PANIC: test-only shape pin.
        }
    }

    #[test]
    fn summary_buckets_by_cell() {
        let log = DecisionLog::new();
        log.push(sel_record(0.05, SelectionStrategy::Gather));
        log.push(sel_record(0.07, SelectionStrategy::Gather));
        log.push(sel_record(0.95, SelectionStrategy::Compact));
        log.push(DecisionRecord::Agg {
            segment: 0,
            worker: 0,
            num_groups_effective: 5,
            num_sums: 2,
            num_minmax: 1,
            est_selectivity: 1.0,
            all_packed_narrow: true,
            multi_layout_fits: true,
            chosen: AggStrategy::InRegister,
            forced: false,
            cycles: 10,
            rows: 100,
        });
        let s = log.summary();
        assert_eq!(s.selection_picks, [2, 1, 0, 0]);
        assert_eq!(s.agg_picks, [0, 0, 1, 0, 0]);
        assert_eq!(s.selection_cells[&(8, 0)], [2, 0, 0, 0]);
        assert_eq!(s.selection_cells[&(8, 9)], [0, 1, 0, 0]);
        // 5 groups → log2 bucket 3 (bit length of 5).
        assert_eq!(s.agg_cells[&3], [0, 0, 1, 0, 0]);
    }

    #[test]
    fn to_json_is_balanced_and_carries_drops() {
        let log = DecisionLog::new();
        log.push(sel_record(0.5, SelectionStrategy::SpecialGroup));
        let json = log.to_json();
        assert!(json.contains("\"dropped\": 0"));
        assert!(json.contains("\"chosen\": \"Special Group\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn publish_query_mirrors_stats_exactly() {
        let t = EngineTelemetry::new();
        let mut stats = ExecStats::default();
        stats.record_selection(SelectionStrategy::Gather);
        stats.record_selection(SelectionStrategy::Gather);
        stats.record_selection(SelectionStrategy::RunSpan);
        stats.record_agg(AggStrategy::MultiAggregate);
        stats.rows_scanned = 2048;
        stats.bytes_scanned = 4096;
        stats.morsels_scanned = 4;
        stats.morsel_steals = 1;
        stats.pool_reuses = 1;
        let profile = QueryProfile::default();
        t.publish_query(&stats, &profile, Duration::from_micros(123));
        t.publish_query(&stats, &profile, Duration::from_micros(456));
        if t.on() {
            assert_eq!(t.selection_picks[0].value(), 4);
            assert_eq!(t.selection_picks[3].value(), 2);
            assert_eq!(t.agg_picks[3].value(), 2);
            assert_eq!(t.queries.value(), 2);
            assert_eq!(t.rows_scanned.value(), 4096);
            assert_eq!(t.bytes_scanned.value(), 8192);
            assert_eq!(t.query_latency_us.count(), 2);
        } else {
            // no_metrics: the same publishes must leave every value at 0.
            assert_eq!(t.selection_picks[0].value(), 0);
            assert_eq!(t.queries.value(), 0);
            assert_eq!(t.query_latency_us.count(), 0);
        }
    }

    #[test]
    fn publish_error_classifies_governor_trips() {
        let t = EngineTelemetry::new();
        t.publish_error(&EngineError::DeadlineExceeded);
        t.publish_error(&EngineError::Cancelled);
        t.publish_error(&EngineError::UnknownColumn("x".into()));
        if t.on() {
            assert_eq!(t.query_errors.value(), 3);
            assert_eq!(t.governor_trips[0].value(), 1);
            assert_eq!(t.governor_trips[1].value(), 1);
            assert_eq!(t.governor_trips[2].value(), 0);
        } else {
            assert_eq!(t.query_errors.value(), 0);
        }
    }

    #[test]
    fn engine_publishes_track_admission_and_sheds() {
        let t = EngineTelemetry::new();
        t.publish_engine_admission(2, 1, true);
        t.publish_engine_admission(1, 0, false);
        t.publish_engine_shed(ShedReason::QueueFull);
        t.publish_engine_shed(ShedReason::AggregateMemory);
        t.publish_engine_shed(ShedReason::AggregateMemory);
        t.publish_sched_stats(crate::pool::SchedStats { jobs_dispatched: 7, query_switches: 3 });
        if t.on() {
            assert_eq!(t.engine_active_queries.value(), 1);
            assert_eq!(t.engine_queued_queries.value(), 0);
            assert_eq!(t.engine_admissions.value(), 1);
            assert_eq!(t.engine_sheds[ShedReason::QueueFull as usize].value(), 1);
            assert_eq!(t.engine_sheds[ShedReason::AggregateMemory as usize].value(), 2);
            assert_eq!(t.engine_sheds[ShedReason::QueueTimeout as usize].value(), 0);
            assert_eq!(t.sched_jobs_dispatched.value(), 7);
            assert_eq!(t.sched_query_switches.value(), 3);
        } else {
            // no_metrics: the same publishes must leave every value at 0.
            assert_eq!(t.engine_admissions.value(), 0);
            assert_eq!(t.sched_jobs_dispatched.value(), 0);
        }
    }

    #[test]
    fn disabled_switch_suppresses_publication() {
        let t = EngineTelemetry::new();
        t.set_enabled(false);
        assert!(!t.on());
        t.publish_query(&ExecStats::default(), &QueryProfile::default(), Duration::ZERO);
        assert_eq!(t.queries.value(), 0);
        t.set_enabled(true);
    }
}
