//! Engine error types.

/// Errors surfaced by query planning and execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A referenced column does not exist in the table.
    UnknownColumn(String),
    /// An operation was applied to a column of the wrong logical type.
    TypeMismatch {
        /// The offending column.
        column: String,
        /// What went wrong.
        detail: String,
    },
    /// The query shape is not supported (e.g. aggregating a string column).
    Unsupported(String),
    /// Segment metadata proves an aggregate could overflow `i64`.
    PotentialOverflow {
        /// Index of the aggregate expression.
        aggregate: usize,
    },
    /// An execution option has an invalid value (checked when the query is
    /// planned, before any scanning starts).
    InvalidOptions {
        /// The offending option (e.g. `batch_rows`).
        option: &'static str,
        /// What is wrong with it.
        detail: String,
    },
    /// A scan worker panicked; the query fails instead of the process.
    WorkerPanicked {
        /// The panic message (best effort).
        detail: String,
    },
    /// The query's [`CancelToken`](crate::governor::CancelToken) was
    /// cancelled; observed cooperatively at a morsel claim or batch
    /// boundary, so no partial result is produced.
    Cancelled,
    /// The query ran past its `time_budget` wall-clock deadline.
    DeadlineExceeded,
    /// A scan-owned allocation (accumulators, wide-group hash table,
    /// selection vectors, unpack buffers) would exceed `mem_budget`.
    MemoryBudgetExceeded {
        /// The configured budget in bytes.
        budget: usize,
        /// The bytes the failing reservation (or plan-time projection)
        /// asked for.
        requested: usize,
    },
    /// The engine's admission controller shed the query instead of running
    /// it (DESIGN.md §15); the query never consumed a slot and no partial
    /// work happened.
    AdmissionRejected {
        /// Why admission shed the query.
        reason: AdmissionReason,
    },
    /// The query waited in the admission queue for the full
    /// `queue_timeout` without a slot freeing up.
    AdmissionTimeout {
        /// How long the query waited before giving up.
        waited: std::time::Duration,
    },
    /// The engine is shutting down (or already shut down); new queries are
    /// refused with this typed error instead of hanging in the queue.
    EngineShutdown,
    /// A query named a table that is not registered with the engine.
    UnknownTable(String),
}

/// Why the engine's admission controller refused a query outright.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionReason {
    /// The admission queue already holds `max_queued` waiting queries.
    QueueFull,
    /// The query's memory budget exceeds the engine's aggregate memory
    /// budget outright — it could never be admitted, even alone.
    AggregateMemory,
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::UnknownColumn(name) => write!(f, "unknown column '{name}'"),
            EngineError::TypeMismatch { column, detail } => {
                write!(f, "type mismatch on column '{column}': {detail}")
            }
            EngineError::Unsupported(what) => write!(f, "unsupported: {what}"),
            EngineError::PotentialOverflow { aggregate } => {
                write!(f, "aggregate #{aggregate} could overflow 64-bit accumulation")
            }
            EngineError::InvalidOptions { option, detail } => {
                write!(f, "invalid execution option `{option}`: {detail}")
            }
            EngineError::WorkerPanicked { detail } => {
                write!(f, "a scan worker panicked: {detail}")
            }
            EngineError::Cancelled => write!(f, "query cancelled"),
            EngineError::DeadlineExceeded => write!(f, "query exceeded its time budget"),
            EngineError::MemoryBudgetExceeded { budget, requested } => {
                write!(
                    f,
                    "query exceeded its memory budget: {requested} bytes requested \
                     against a {budget}-byte budget"
                )
            }
            EngineError::AdmissionRejected { reason } => match reason {
                AdmissionReason::QueueFull => {
                    write!(f, "query shed by admission control: the admission queue is full")
                }
                AdmissionReason::AggregateMemory => write!(
                    f,
                    "query shed by admission control: its memory budget exceeds the \
                     engine's aggregate memory budget"
                ),
            },
            EngineError::AdmissionTimeout { waited } => {
                write!(f, "query timed out in the admission queue after {waited:?}")
            }
            EngineError::EngineShutdown => write!(f, "engine is shutting down"),
            EngineError::UnknownTable(name) => write!(f, "unknown table '{name}'"),
        }
    }
}

impl std::error::Error for EngineError {}

/// Engine result alias.
pub type Result<T> = std::result::Result<T, EngineError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(EngineError::UnknownColumn("x".into()).to_string(), "unknown column 'x'");
        assert!(EngineError::PotentialOverflow { aggregate: 2 }.to_string().contains("#2"));
        let e = EngineError::TypeMismatch { column: "c".into(), detail: "want int".into() };
        assert!(e.to_string().contains("'c'"));
        let e = EngineError::Unsupported("string aggregation".into());
        assert_eq!(e.to_string(), "unsupported: string aggregation");
        let e = EngineError::InvalidOptions { option: "batch_rows", detail: "must be > 0".into() };
        assert!(e.to_string().contains("batch_rows"));
        let e = EngineError::WorkerPanicked { detail: "boom".into() };
        assert!(e.to_string().contains("boom"));
        assert_eq!(EngineError::Cancelled.to_string(), "query cancelled");
        assert!(EngineError::DeadlineExceeded.to_string().contains("time budget"));
        let e = EngineError::MemoryBudgetExceeded { budget: 100, requested: 170 };
        assert!(e.to_string().contains("170"), "{e}");
        assert!(e.to_string().contains("100-byte"), "{e}");
        let e = EngineError::AdmissionRejected { reason: AdmissionReason::QueueFull };
        assert!(e.to_string().contains("admission queue is full"), "{e}");
        let e = EngineError::AdmissionRejected { reason: AdmissionReason::AggregateMemory };
        assert!(e.to_string().contains("aggregate memory budget"), "{e}");
        let e = EngineError::AdmissionTimeout { waited: std::time::Duration::from_millis(25) };
        assert!(e.to_string().contains("admission queue"), "{e}");
        assert_eq!(EngineError::EngineShutdown.to_string(), "engine is shutting down");
        assert_eq!(EngineError::UnknownTable("t".into()).to_string(), "unknown table 't'");
    }
}
