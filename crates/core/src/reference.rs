//! A deliberately naive reference executor.
//!
//! Evaluates the same query shape as [`crate::execute`] by decoding every
//! row and processing it one at a time — no selection vectors, no SIMD, no
//! strategy specialization, no shared kernels. It exists purely as the
//! correctness oracle: property tests assert that the BIPie engine and this
//! executor produce identical results on arbitrary tables and queries.

use std::collections::BTreeMap;

use bipie_columnstore::encoding::EncodedColumn;
use bipie_columnstore::{Table, Value};

use crate::error::{EngineError, Result};
use crate::query::{AggExpr, AggValue, Query, QueryResult, ResultRow};
use crate::stats::ExecStats;

/// Execute `query` row-at-a-time. Produces rows ordered by group key, the
/// same contract as [`crate::execute`].
pub fn execute_reference(table: &Table, query: &Query) -> Result<QueryResult> {
    let mut group_idx = Vec::new();
    for name in &query.group_by {
        group_idx.push(
            table.column_index(name).ok_or_else(|| EngineError::UnknownColumn(name.clone()))?,
        );
    }
    // (count, sums, mins, maxs) per key; one slot per Sum/Avg aggregate
    // and one per Min/Max aggregate.
    let num_sums =
        query.aggregates.iter().filter(|a| matches!(a, AggExpr::Sum(_) | AggExpr::Avg(_))).count();
    let num_mm =
        query.aggregates.iter().filter(|a| matches!(a, AggExpr::Min(_) | AggExpr::Max(_))).count();
    type Acc = (u64, Vec<i64>, Vec<i64>, Vec<i64>);
    let mut groups: BTreeMap<Vec<Value>, Acc> = BTreeMap::new();

    let mut process_row = |value_of: &dyn Fn(&str) -> Value| -> Result<()> {
        if let Some(f) = &query.filter {
            if !f.eval_row(&|n| value_of(n)) {
                return Ok(());
            }
        }
        let key: Vec<Value> = query.group_by.iter().map(|n| value_of(n)).collect();
        let entry = groups.entry(key).or_insert_with(|| {
            (0, vec![0i64; num_sums], vec![i64::MAX; num_mm], vec![i64::MIN; num_mm])
        });
        entry.0 += 1;
        let eval = |e: &crate::expr::Expr| -> Result<i64> {
            let resolved = e.resolve(&|n| table.column_index(n))?;
            Ok(resolved.eval_row(&|idx| {
                value_of(&table.specs()[idx].name)
                    .as_storage_i64()
                    // PANIC: aggregate inputs were type-checked as
                    // integer-like when the query was validated.
                    .expect("integer-like aggregate input")
            }))
        };
        let mut slot = 0usize;
        let mut mm_slot = 0usize;
        for agg in &query.aggregates {
            match agg {
                AggExpr::Sum(e) | AggExpr::Avg(e) => {
                    entry.1[slot] += eval(e)?;
                    slot += 1;
                }
                AggExpr::Min(e) | AggExpr::Max(e) => {
                    let v = eval(e)?;
                    entry.2[mm_slot] = entry.2[mm_slot].min(v);
                    entry.3[mm_slot] = entry.3[mm_slot].max(v);
                    mm_slot += 1;
                }
                AggExpr::CountStar => {}
            }
        }
        Ok(())
    };

    for seg in table.segments() {
        // Materialize each string dictionary to shared values once per
        // segment: the row loop below then clones an `Arc<str>` per access
        // instead of re-allocating the string for every row.
        let dict_vals: Vec<Option<Vec<Value>>> = (0..table.specs().len())
            .map(|idx| match seg.column(idx) {
                EncodedColumn::StrDict(d) => {
                    Some(d.dict().iter().map(|s| Value::Str(s.as_str().into())).collect())
                }
                _ => None,
            })
            .collect();
        for row in 0..seg.num_rows() {
            if seg.deleted().is_deleted(row) {
                continue;
            }
            let value_of = |name: &str| -> Value {
                // PANIC: query validation resolved every column name.
                let idx = table.column_index(name).expect("known column");
                match seg.column(idx) {
                    EncodedColumn::StrDict(d) => {
                        // PANIC: materialized above for every StrDict column.
                        let dict = dict_vals[idx].as_ref().expect("materialized above");
                        dict[d.codes().get(row) as usize].clone()
                    }
                    other => Value::from_storage_i64(table.specs()[idx].ty, other.get_i64(row)),
                }
            };
            process_row(&value_of)?;
        }
    }
    for row in table.mutable_rows() {
        let value_of =
            // PANIC: query validation resolved every column name.
            |name: &str| -> Value { row[table.column_index(name).expect("known column")].clone() };
        process_row(&value_of)?;
    }

    let rows = groups
        .into_iter()
        .map(|(keys, (count, sums, mins, maxs))| {
            let mut slot = 0usize;
            let mut mm_slot = 0usize;
            let aggs = query
                .aggregates
                .iter()
                .map(|agg| match agg {
                    AggExpr::CountStar => AggValue::Count(count),
                    AggExpr::Sum(_) => {
                        let v = AggValue::Sum(sums[slot]);
                        slot += 1;
                        v
                    }
                    AggExpr::Avg(_) => {
                        let v = AggValue::Avg(sums[slot] as f64 / count.max(1) as f64);
                        slot += 1;
                        v
                    }
                    AggExpr::Min(_) => {
                        let v = AggValue::Min(mins[mm_slot]);
                        mm_slot += 1;
                        v
                    }
                    AggExpr::Max(_) => {
                        let v = AggValue::Max(maxs[mm_slot]);
                        mm_slot += 1;
                        v
                    }
                })
                .collect();
            ResultRow { keys, aggs }
        })
        .collect();
    Ok(QueryResult {
        group_columns: query.group_by.clone(),
        rows,
        stats: ExecStats::default(),
        profile: crate::trace::QueryProfile::default(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::Predicate;
    use crate::query::{execute, QueryBuilder};
    use bipie_columnstore::{ColumnSpec, LogicalType, TableBuilder};

    #[test]
    fn engine_matches_reference_on_a_mixed_table() {
        let mut b = TableBuilder::with_segment_rows(
            vec![
                ColumnSpec::new("cat", LogicalType::Str),
                ColumnSpec::new("n", LogicalType::I64),
                ColumnSpec::new("m", LogicalType::I64),
            ],
            700,
        );
        for i in 0..2500i64 {
            b.push_row(vec![
                Value::Str(["p", "q", "r", "s", "t"][(i % 5) as usize].into()),
                Value::I64((i * 31) % 1000 - 500),
                Value::I64(i % 7),
            ]);
        }
        let mut t = b.finish();
        t.segment_mut(1).delete_row(10);
        t.insert(vec![Value::Str("q".into()), Value::I64(-99), Value::I64(3)]);

        let q = QueryBuilder::new()
            .filter(Predicate::ge("n", Value::I64(-250)))
            .group_by("cat")
            .aggregate(AggExpr::count_star())
            .aggregate(AggExpr::sum("n"))
            .aggregate(AggExpr::sum_expr(crate::Expr::col("n").mul(crate::Expr::col("m"))))
            .build();
        let fast = execute(&t, &q).unwrap();
        let slow = execute_reference(&t, &q).unwrap();
        assert_eq!(fast.rows, slow.rows);
    }
}
