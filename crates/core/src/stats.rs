//! Execution statistics.
//!
//! BIPie's defining behavior is *which* specialized operator ran where; the
//! stats expose that so tests can pin strategy decisions and examples can
//! show the adaptive behavior (§3: aggregation strategy per segment,
//! selection strategy per batch).

use crate::strategy::{AggStrategy, SelectionStrategy};

/// Counters collected during one query execution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Segments whose metadata eliminated them before scanning.
    pub segments_eliminated: usize,
    /// Segments actually scanned.
    pub segments_scanned: usize,
    /// Segments that used the wide-group (u32 group id) fallback path.
    pub wide_group_segments: usize,
    /// Batches processed.
    pub batches: usize,
    /// Rows scanned (live rows of scanned segments).
    pub rows_scanned: usize,
    /// Rows from the mutable region processed row-at-a-time.
    pub mutable_rows: usize,
    /// Batches per selection strategy, indexed by [`SelectionStrategy`].
    pub selection_batches: [usize; 3],
    /// Segments per aggregation strategy, indexed by [`AggStrategy`].
    pub agg_segments: [usize; 4],
    /// Morsels claimed by parallel scan workers (0 for serial scans).
    pub morsels_scanned: usize,
    /// Morsels a worker claimed outside its home segment partition
    /// (skew-induced work stealing).
    pub morsel_steals: usize,
    /// Workers that participated in the parallel scan (0 for serial).
    pub pool_workers: usize,
    /// Fork-join regions served entirely by already-running pool workers
    /// (vs. regions that had to grow the pool).
    pub pool_reuses: usize,
}

impl ExecStats {
    /// Record one batch's selection choice.
    pub fn record_selection(&mut self, s: SelectionStrategy) {
        self.selection_batches[s as usize] += 1;
        self.batches += 1;
    }

    /// Record one segment's aggregation choice.
    pub fn record_agg(&mut self, a: AggStrategy) {
        self.agg_segments[a as usize] += 1;
    }

    /// Merge stats from another (per-segment / per-thread) collector.
    pub fn merge(&mut self, other: &ExecStats) {
        self.segments_eliminated += other.segments_eliminated;
        self.segments_scanned += other.segments_scanned;
        self.wide_group_segments += other.wide_group_segments;
        self.batches += other.batches;
        self.rows_scanned += other.rows_scanned;
        self.mutable_rows += other.mutable_rows;
        for i in 0..3 {
            self.selection_batches[i] += other.selection_batches[i];
        }
        for i in 0..4 {
            self.agg_segments[i] += other.agg_segments[i];
        }
        self.morsels_scanned += other.morsels_scanned;
        self.morsel_steals += other.morsel_steals;
        self.pool_workers = self.pool_workers.max(other.pool_workers);
        self.pool_reuses += other.pool_reuses;
    }

    /// Batches that used the given selection strategy.
    pub fn selection_count(&self, s: SelectionStrategy) -> usize {
        self.selection_batches[s as usize]
    }

    /// Segments that used the given aggregation strategy.
    pub fn agg_count(&self, a: AggStrategy) -> usize {
        self.agg_segments[a as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_merge() {
        let mut a = ExecStats::default();
        a.record_selection(SelectionStrategy::Gather);
        a.record_selection(SelectionStrategy::SpecialGroup);
        a.record_agg(AggStrategy::InRegister);
        let mut b = ExecStats::default();
        b.record_selection(SelectionStrategy::Gather);
        b.record_agg(AggStrategy::MultiAggregate);
        b.segments_scanned = 2;
        a.merge(&b);
        assert_eq!(a.selection_count(SelectionStrategy::Gather), 2);
        assert_eq!(a.selection_count(SelectionStrategy::SpecialGroup), 1);
        assert_eq!(a.selection_count(SelectionStrategy::Compact), 0);
        assert_eq!(a.agg_count(AggStrategy::InRegister), 1);
        assert_eq!(a.agg_count(AggStrategy::MultiAggregate), 1);
        assert_eq!(a.batches, 3);
        assert_eq!(a.segments_scanned, 2);
    }
}
