//! Execution statistics.
//!
//! BIPie's defining behavior is *which* specialized operator ran where; the
//! stats expose that so tests can pin strategy decisions and examples can
//! show the adaptive behavior (§3: aggregation strategy per segment,
//! selection strategy per batch).
//!
//! ## Merge semantics
//!
//! [`ExecStats::merge`] folds a per-segment or per-thread collector into a
//! query-level one. Fields fall into two classes, annotated on each field:
//!
//! * **additive** — disjoint work counted once per occurrence (rows,
//!   batches, morsels, strategy tallies). Merging sums them.
//! * **region-level** — facts about one fork-join *region* the coordinator
//!   observes once (`pool_workers`, `pool_reuses`). Per-thread collectors
//!   from the same region would each see the same region, so merging takes
//!   the max to avoid double counting; the scan coordinator accounts new
//!   regions directly (one `+=` per completed `pool.run`), never through
//!   `merge`.

use crate::strategy::{AggStrategy, SelectionStrategy};

/// Counters collected during one query execution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Segments whose metadata eliminated them before scanning. Additive.
    pub segments_eliminated: usize,
    /// Segments actually scanned. Additive.
    pub segments_scanned: usize,
    /// Segments that used the wide-group (u32 group id) fallback path.
    /// Additive.
    pub wide_group_segments: usize,
    /// Batches processed. Additive.
    pub batches: usize,
    /// Rows scanned (live rows of scanned segments). Additive.
    pub rows_scanned: usize,
    /// Encoded bytes of scanned segments (the compressed footprint the
    /// scan actually read, not the decoded width). Additive.
    pub bytes_scanned: usize,
    /// Rows from the mutable region processed row-at-a-time. Additive.
    pub mutable_rows: usize,
    /// Batches per selection strategy, indexed by [`SelectionStrategy`].
    /// Additive.
    pub selection_batches: [usize; 4],
    /// Aggregation-strategy decisions, indexed by [`AggStrategy`] — one per
    /// segment executor, so parallel scans may count one segment once per
    /// worker that touched it. Additive.
    pub agg_segments: [usize; 5],
    /// Morsels claimed by parallel scan workers (0 for serial scans).
    /// Additive.
    pub morsels_scanned: usize,
    /// Morsels a worker claimed outside its home segment partition
    /// (skew-induced work stealing). Additive.
    pub morsel_steals: usize,
    /// Workers that participated in the parallel scan (0 for serial).
    /// Region-level: merging takes the max.
    pub pool_workers: usize,
    /// Fork-join regions served entirely by already-running pool workers
    /// (vs. regions that had to grow the pool). Region-level: merging takes
    /// the max; the coordinator increments it once per completed region.
    pub pool_reuses: usize,
    /// Cooperative governor checks performed (morsel claims + batch
    /// boundaries + plan admission); 0 when no limit was set. Additive.
    pub governor_checks: usize,
    /// Peak bytes the memory accountant had reserved against `mem_budget`
    /// (slack chunks included; 0 with no budget). Region-level: the
    /// governor's high-water mark is a query-wide gauge the coordinator
    /// reads once, so merging takes the max.
    pub mem_reserved_peak: usize,
}

impl ExecStats {
    /// Record one batch's selection choice.
    pub fn record_selection(&mut self, s: SelectionStrategy) {
        self.selection_batches[s as usize] += 1;
        self.batches += 1;
    }

    /// Record one segment's aggregation choice.
    pub fn record_agg(&mut self, a: AggStrategy) {
        self.agg_segments[a as usize] += 1;
    }

    /// Merge stats from another (per-segment / per-thread) collector. See
    /// the module docs for which fields sum and which take the max.
    pub fn merge(&mut self, other: &ExecStats) {
        self.segments_eliminated += other.segments_eliminated;
        self.segments_scanned += other.segments_scanned;
        self.wide_group_segments += other.wide_group_segments;
        self.batches += other.batches;
        self.rows_scanned += other.rows_scanned;
        self.bytes_scanned += other.bytes_scanned;
        self.mutable_rows += other.mutable_rows;
        for i in 0..4 {
            self.selection_batches[i] += other.selection_batches[i];
        }
        for i in 0..5 {
            self.agg_segments[i] += other.agg_segments[i];
        }
        self.morsels_scanned += other.morsels_scanned;
        self.morsel_steals += other.morsel_steals;
        self.pool_workers = self.pool_workers.max(other.pool_workers);
        self.pool_reuses = self.pool_reuses.max(other.pool_reuses);
        self.governor_checks += other.governor_checks;
        self.mem_reserved_peak = self.mem_reserved_peak.max(other.mem_reserved_peak);
    }

    /// Batches that used the given selection strategy.
    pub fn selection_count(&self, s: SelectionStrategy) -> usize {
        self.selection_batches[s as usize]
    }

    /// Segment executors that used the given aggregation strategy.
    pub fn agg_count(&self, a: AggStrategy) -> usize {
        self.agg_segments[a as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_merge() {
        let mut a = ExecStats::default();
        a.record_selection(SelectionStrategy::Gather);
        a.record_selection(SelectionStrategy::SpecialGroup);
        a.record_agg(AggStrategy::InRegister);
        let mut b = ExecStats::default();
        b.record_selection(SelectionStrategy::Gather);
        b.record_agg(AggStrategy::MultiAggregate);
        b.segments_scanned = 2;
        a.merge(&b);
        assert_eq!(a.selection_count(SelectionStrategy::Gather), 2);
        assert_eq!(a.selection_count(SelectionStrategy::SpecialGroup), 1);
        assert_eq!(a.selection_count(SelectionStrategy::Compact), 0);
        assert_eq!(a.agg_count(AggStrategy::InRegister), 1);
        assert_eq!(a.agg_count(AggStrategy::MultiAggregate), 1);
        assert_eq!(a.batches, 3);
        assert_eq!(a.segments_scanned, 2);
    }

    #[test]
    fn merge_does_not_double_count_region_level_fields() {
        // Two per-thread collectors observed the SAME fork-join region:
        // merging them must not count the region's workers or its pool
        // reuse twice.
        let mut a = ExecStats { pool_workers: 4, pool_reuses: 1, ..ExecStats::default() };
        let b = ExecStats { pool_workers: 4, pool_reuses: 1, ..ExecStats::default() };
        a.merge(&b);
        assert_eq!(a.pool_workers, 4, "workers is a region-level gauge");
        assert_eq!(a.pool_reuses, 1, "reuses must not double-count the region");
        // A collector that saw more regions dominates.
        let c = ExecStats { pool_reuses: 3, ..ExecStats::default() };
        a.merge(&c);
        assert_eq!(a.pool_reuses, 3);
    }

    #[test]
    fn governor_fields_merge_by_class() {
        // Checks are disjoint per-worker work (additive); the reserved peak
        // is the governor's query-wide gauge (max).
        let mut a =
            ExecStats { governor_checks: 3, mem_reserved_peak: 4096, ..ExecStats::default() };
        let b = ExecStats { governor_checks: 5, mem_reserved_peak: 1024, ..ExecStats::default() };
        a.merge(&b);
        assert_eq!(a.governor_checks, 8);
        assert_eq!(a.mem_reserved_peak, 4096);
    }
}
