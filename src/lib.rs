//! # BIPie
//!
//! A from-scratch Rust reproduction of **"BIPie: Fast Selection and
//! Aggregation on Encoded Data using Operator Specialization"**
//! (Nowakiewicz et al., SIGMOD 2018).
//!
//! BIPie is a scan engine for analytical queries of the form
//! `SELECT g, count(*), sum(a1), ..., sum(an) FROM t WHERE p GROUP BY g`
//! executed directly on encoded columnar data. It fuses decoding, selection,
//! and grouped aggregation into a single pass, picking among specialized
//! SIMD operator implementations at runtime.
//!
//! This umbrella crate re-exports the workspace members:
//!
//! * [`toolbox`] — the Vector Toolbox: low-level SIMD kernels (bit packing,
//!   selection vectors, compaction, gather selection, special-group
//!   assignment, and the scalar / sort-based / in-register / multi-aggregate
//!   aggregation strategies).
//! * [`columnstore`] — the columnar storage substrate: encoded segments
//!   (bit packing, dictionary, RLE, delta), per-segment metadata, deleted-row
//!   tracking, and 4096-row batch scanning.
//! * [`core`] — the BIPie engine: filter evaluation, group-id mapping,
//!   the Aggregate Processor with runtime strategy selection, and the
//!   public query API.
//! * [`tpch`] — a deterministic TPC-H `lineitem` generator and Query 1
//!   workloads used by the paper's end-to-end evaluation.
//! * [`metrics`] — the cycle-accurate measurement harness used by the
//!   experiment binaries.
//!
//! ## Quickstart
//!
//! ```
//! use bipie::core::{QueryBuilder, AggExpr, Predicate};
//! use bipie::columnstore::{TableBuilder, ColumnSpec, LogicalType, Value};
//!
//! // Build a tiny columnstore table.
//! let mut builder = TableBuilder::new(vec![
//!     ColumnSpec::new("region", LogicalType::Str),
//!     ColumnSpec::new("sales", LogicalType::I64),
//! ]);
//! for i in 0..1000i64 {
//!     let region = ["north", "south", "east", "west"][(i % 4) as usize];
//!     builder.push_row(vec![Value::Str(region.into()), Value::I64(i)]);
//! }
//! let table = builder.finish();
//!
//! // SELECT region, count(*), sum(sales) FROM t WHERE sales >= 500 GROUP BY region
//! let query = QueryBuilder::new()
//!     .filter(Predicate::ge("sales", Value::I64(500)))
//!     .group_by("region")
//!     .aggregate(AggExpr::count_star())
//!     .aggregate(AggExpr::sum("sales"))
//!     .build();
//! let result = bipie::core::execute(&table, &query).unwrap();
//! assert_eq!(result.num_rows(), 4);
//! ```

pub use bipie_columnstore as columnstore;
pub use bipie_core as core;
pub use bipie_metrics as metrics;
pub use bipie_toolbox as toolbox;
pub use bipie_tpch as tpch;
